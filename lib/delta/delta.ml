open Roll_relation
module Vec = Roll_util.Vec

type row = { tuple : Tuple.t; count : int; ts : Time.t }

type t = {
  schema : Schema.t;
  rows : row Vec.t;
  (* Indices into [rows], sorted by (ts, arrival); rebuilt on demand. *)
  mutable index : int array;
  mutable index_dirty : bool;
}

let create schema =
  { schema; rows = Vec.create (); index = [||]; index_dirty = false }

let schema t = t.schema

let append_row t row =
  if row.count <> 0 then begin
    if not (Tuple.conforms t.schema row.tuple) then
      invalid_arg "Delta.append: tuple does not conform to schema";
    (* Appends that keep timestamps non-decreasing (the common case for
       base-table deltas) keep the index valid without a rebuild. *)
    (match Vec.last t.rows with
    | Some prev when prev.ts > row.ts -> t.index_dirty <- true
    | _ -> ());
    Vec.push t.rows row
  end

let append t tuple ~count ~ts = append_row t { tuple; count; ts }

let length t = Vec.length t.rows

let truncate t n =
  if n < 0 then invalid_arg "Delta.truncate: negative length";
  while Vec.length t.rows > n do
    ignore (Vec.pop t.rows)
  done;
  (* [ensure_index] rebuilds on any length mismatch, but mark dirty anyway
     so a same-length rebuildless path can never see stale indices. *)
  if Array.length t.index <> Vec.length t.rows then t.index_dirty <- true

let iter f t = Vec.iter f t.rows

let to_list t = Vec.to_list t.rows

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Vec.length t.rows then
    invalid_arg "Delta.sub: slice out of range";
  Array.init len (fun i -> Vec.get t.rows (pos + i))

let rebuild_index t =
  let n = Vec.length t.rows in
  let idx = Array.init n (fun i -> i) in
  let cmp i j =
    let ri = Vec.get t.rows i and rj = Vec.get t.rows j in
    let c = Time.compare ri.ts rj.ts in
    if c <> 0 then c else Int.compare i j
  in
  Array.sort cmp idx;
  t.index <- idx;
  t.index_dirty <- false

let ensure_index t =
  if t.index_dirty || Array.length t.index <> Vec.length t.rows then
    rebuild_index t

let freshen = ensure_index

let ts_at t k = (Vec.get t.rows t.index.(k)).ts

(* Smallest index position whose timestamp is >= [ts]. *)
let lower_bound t ts =
  let lo = ref 0 and hi = ref (Array.length t.index) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ts_at t mid < ts then lo := mid + 1 else hi := mid
  done;
  !lo

(* The single traversal core: a lazy sequence over the timestamp-sorted
   index. The thunk re-checks the index on every replay, so a cursor rewound
   after new appends sees a consistent (rebuilt) ordering. *)
let window_seq t ~lo ~hi () =
  if hi <= lo || Vec.length t.rows = 0 then Seq.Nil
  else begin
    ensure_index t;
    let n = Array.length t.index in
    let rec go k () =
      if k >= n || ts_at t k > hi then Seq.Nil
      else Seq.Cons (Vec.get t.rows t.index.(k), go (k + 1))
    in
    go (lower_bound t (lo + 1)) ()
  end

let window_cursor t ~lo ~hi =
  Cursor.of_seq (fun () ->
      Seq.map
        (fun (r : row) -> { Cursor.tuple = r.tuple; count = r.count; ts = r.ts })
        (fun () -> window_seq t ~lo ~hi ()))

let window_iter t ~lo ~hi f = Seq.iter f (fun () -> window_seq t ~lo ~hi ())

let window t ~lo ~hi =
  let acc = ref [] in
  window_iter t ~lo ~hi (fun row -> acc := row :: !acc);
  List.rev !acc

let window_count t ~lo ~hi =
  let n = ref 0 in
  window_iter t ~lo ~hi (fun _ -> incr n);
  !n

let min_ts t =
  if Vec.length t.rows = 0 then None
  else begin
    ensure_index t;
    Some (ts_at t 0)
  end

let max_ts t =
  if Vec.length t.rows = 0 then None
  else begin
    ensure_index t;
    Some (ts_at t (Array.length t.index - 1))
  end

let net_effect t ~lo ~hi =
  let r = Relation.create t.schema in
  window_iter t ~lo ~hi (fun row -> Relation.add r row.tuple row.count);
  r

let apply_window t ~lo ~hi r =
  window_iter t ~lo ~hi (fun row -> Relation.add r row.tuple row.count)

let prune t ~upto =
  let keep = Vec.create () in
  let dropped = ref 0 in
  Vec.iter
    (fun row -> if row.ts <= upto then incr dropped else Vec.push keep row)
    t.rows;
  if !dropped > 0 then begin
    Vec.clear t.rows;
    Vec.iter (fun row -> Vec.push t.rows row) keep;
    t.index_dirty <- true
  end;
  !dropped

let compact t =
  let module Key = struct
    type t = Tuple.t * Time.t

    let equal (a, i) (b, j) = Time.equal i j && Tuple.equal a b
    let hash (a, i) = (Tuple.hash a * 31) + i
  end in
  let module H = Hashtbl.Make (Key) in
  let before = Vec.length t.rows in
  let totals = H.create (max 16 before) in
  let order = Vec.create () in
  Vec.iter
    (fun row ->
      let key = (row.tuple, row.ts) in
      match H.find_opt totals key with
      | None ->
          H.add totals key row.count;
          Vec.push order key
      | Some c -> H.replace totals key (c + row.count))
    t.rows;
  Vec.clear t.rows;
  Vec.iter
    (fun ((tuple, ts) as key) ->
      let count = H.find totals key in
      if count <> 0 then Vec.push t.rows { tuple; count; ts })
    order;
  t.index_dirty <- true;
  before - Vec.length t.rows

let copy t =
  let t' = create t.schema in
  iter (fun row -> append_row t' row) t;
  t'

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter
    (fun row ->
      Format.fprintf ppf "@@%a %+d x %a@," Time.pp row.ts row.count Tuple.pp
        row.tuple)
    t;
  Format.fprintf ppf "@]"
