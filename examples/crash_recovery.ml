(* Crash recovery: persist the WAL and a maintenance checkpoint, "crash",
   restore into a fresh process, and keep maintaining the view — rolling
   straight through the restart boundary.

     dune exec examples/crash_recovery.exe
*)

open Roll_relation
module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module Wal_codec = Roll_storage.Wal_codec
module Prng = Roll_util.Prng
module C = Roll_core

let int_col name = { Schema.name; ty = Value.T_int }

(* The schema both "processes" agree on. *)
let build_world () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"events" (Schema.make [ int_col "kind"; int_col "v" ]) in
  let _ = Database.create_table db ~name:"kinds" (Schema.make [ int_col "kind"; int_col "sev" ]) in
  let capture = Capture.create db in
  Capture.attach capture ~table:"events";
  Capture.attach capture ~table:"kinds";
  let view =
    Roll_dsl.Sql.parse_view db ~name:"sev_events"
      "SELECT k.sev, e.v FROM events e JOIN kinds k ON e.kind = k.kind"
  in
  (db, capture, view)

let () =
  let wal_path = Filename.temp_file "crash_demo" ".wal" in
  let ckpt_path = Filename.temp_file "crash_demo" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove wal_path;
      Sys.remove ckpt_path)
    (fun () ->
      let rng = Prng.create ~seed:7 in
      (* --- first life --- *)
      let db, capture, view = build_world () in
      ignore
        (Database.run db (fun txn ->
             for kind = 0 to 4 do
               Database.insert txn ~table:"kinds" (Tuple.ints [ kind; kind * 10 ])
             done));
      let ctx = C.Ctx.create ~t_initial:Time.origin db capture view in
      let rolling = C.Rolling.create ctx ~t_initial:Time.origin in
      let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
      for _ = 1 to 40 do
        ignore
          (Database.run db (fun txn ->
               Database.insert txn ~table:"events"
                 (Tuple.ints [ Prng.int rng 5; Prng.int rng 100 ])))
      done;
      C.Rolling.run_until rolling
        ~target:(Database.now db / 2)
        ~policy:(C.Rolling.per_relation [| 6; 50 |]);
      let hwm = C.Rolling.hwm rolling in
      C.Apply.roll_to apply ~hwm hwm;
      Printf.printf "first life: %d commits, view applied through t=%d (%d rows)\n"
        (Database.now db) (C.Apply.as_of apply)
        (Relation.distinct_count (C.Apply.contents apply));

      (* --- persist and crash --- *)
      Wal_codec.save_file (Database.wal db) wal_path;
      C.Checkpoint.save ctx ~hwm ~apply ckpt_path;
      Printf.printf "persisted WAL (%d records) and checkpoint; crashing.\n"
        (List.length (Wal_codec.load_file wal_path));

      (* --- second life: fresh objects, restored state --- *)
      let db2, capture2, view2 = build_world () in
      Database.restore db2 (Wal_codec.load_file wal_path);
      Capture.advance capture2;
      let header = C.Checkpoint.peek ckpt_path in
      Printf.printf "restored database at t=%d; checkpoint: hwm=%d as_of=%d\n"
        (Database.now db2) header.C.Checkpoint.hwm header.C.Checkpoint.as_of;
      let ctx2, apply2, rolling2 = C.Checkpoint.resume db2 capture2 view2 ckpt_path in
      ignore ctx2;

      (* Life goes on. *)
      for _ = 1 to 30 do
        ignore
          (Database.run db2 (fun txn ->
               Database.insert txn ~table:"events"
                 (Tuple.ints [ Prng.int rng 5; Prng.int rng 100 ])))
      done;
      let target = Database.now db2 in
      C.Rolling.run_until rolling2 ~target ~policy:(C.Rolling.per_relation [| 6; 50 |]);
      C.Apply.roll_to apply2 ~hwm:(C.Rolling.hwm rolling2) target;
      Printf.printf
        "second life: rolled through the restart to t=%d (%d rows), no recomputation.\n"
        target
        (Relation.distinct_count (C.Apply.contents apply2));

      (* Sanity: compare with a from-scratch recomputation. *)
      let history = Roll_storage.History.create db2 in
      let expected = C.Oracle.view_at history view2 target in
      Printf.printf "matches a full recomputation: %b\n"
        (Relation.equal expected (C.Apply.contents apply2)))
