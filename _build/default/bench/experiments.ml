(* One experiment per paper figure and claim; see DESIGN.md section 6 for
   the index and EXPERIMENTS.md for recorded outcomes. *)

open Exp_common
module Capture = Roll_capture.Capture
module Delta = Roll_delta.Delta
module Relation = Roll_relation.Relation
module Des = Roll_sim.Des
module Contention = Roll_sim.Contention

(* ------------------------------------------------------------------ *)
(* F1 — Figure 1: synchronous incremental refresh vs full recompute.   *)
(* ------------------------------------------------------------------ *)

let fig1_sync_incremental () =
  let rows = ref [] in
  List.iter
    (fun churn ->
      let w =
        churned_nway ~key_range:25 ~initial_rows:2000 ~n:2 ~txns:churn ~seed:1 ()
      in
      let history = W.Nway.history w in
      let view = W.Nway.view w in
      let hi = Database.now (W.Nway.db w) in
      (* The interval starts after the initial load. *)
      let lo = hi - churn in
      let (_, inc_cost), inc_time =
        time_it (fun () -> C.Baseline.eq1 history view ~lo ~hi)
      in
      let (_, full_cost), full_time =
        time_it (fun () -> C.Baseline.recompute_diff history view ~lo ~hi)
      in
      rows :=
        [
          string_of_int churn;
          string_of_int inc_cost.C.Baseline.rows_read;
          ms inc_time;
          string_of_int full_cost.C.Baseline.rows_read;
          ms full_time;
          (if inc_cost.C.Baseline.rows_read < full_cost.C.Baseline.rows_read then
             "incremental"
           else "recompute");
        ]
        :: !rows)
    [ 25; 100; 400; 1600; 3200 ];
  table ~title:"F1 (Figure 1): incremental refresh vs full recompute, 2-way join, 2000+2000 base rows"
    ~header:
      [ "update txns"; "incr rows read"; "incr ms"; "recomp rows read"; "recomp ms"; "winner" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F2 — Figure 2: the propagate/apply split.                           *)
(* ------------------------------------------------------------------ *)

let fig2_propagate_apply () =
  let w = churned_nway ~key_range:60 ~n:3 ~initial_rows:400 ~txns:600 ~seed:2 () in
  let ctx = ctx_for w in
  let target = Database.now (W.Nway.db w) in
  let p = C.Propagate.create ctx ~t_initial:0 in
  let (), prop_time = time_it (fun () -> C.Propagate.run_until p ~target ~interval:25) in
  let apply = C.Apply.create_empty ctx ~t_initial:0 in
  let rows = ref [] in
  let quarter = target / 4 in
  List.iter
    (fun k ->
      let t = min target (k * quarter) in
      let (), apply_time = time_it (fun () -> C.Apply.roll_to apply ~hwm:target t) in
      rows :=
        [ Printf.sprintf "roll to t=%d" t; ms apply_time ] :: !rows)
    [ 1; 2; 3; 4 ];
  table ~title:"F2 (Figure 2): propagate once, apply separately (3-way view, 600 txns)"
    ~header:[ "phase"; "time ms" ]
    ([ [ "propagate (full delta)"; ms prop_time ];
       [ Printf.sprintf "  = %d queries, %d rows read" (C.Stats.queries ctx.C.Ctx.stats)
           (C.Stats.rows_read ctx.C.Ctx.stats);
         "" ] ]
    @ List.rev !rows);
  check_or_die "F2 final state"
    (if Relation.equal
          (C.Oracle.view_at (W.Nway.history w) (W.Nway.view w) target)
          (C.Apply.contents apply)
     then Ok ()
     else Error "apply diverged from oracle")

(* ------------------------------------------------------------------ *)
(* F3 — Figure 3: view delta with high-water mark; point-in-time.      *)
(* ------------------------------------------------------------------ *)

let fig3_point_in_time () =
  let w = churned_nway ~n:2 ~initial_rows:200 ~txns:300 ~seed:3 () in
  let ctx = ctx_for w in
  let rolling = C.Rolling.create ctx ~t_initial:0 in
  (* Propagate only part of the elapsed history: hwm < now. *)
  let now = Database.now (W.Nway.db w) in
  let stop = now / 2 in
  C.Rolling.run_until rolling ~target:stop ~policy:(C.Rolling.uniform 20);
  let hwm = C.Rolling.hwm rolling in
  let beyond =
    Delta.length ctx.C.Ctx.out - Delta.window_count ctx.C.Ctx.out ~lo:0 ~hi:hwm
  in
  let apply = C.Apply.create_empty ctx ~t_initial:0 in
  let rows = ref [] in
  List.iter
    (fun t ->
      if t <= hwm && t >= C.Apply.as_of apply then begin
        C.Apply.roll_to apply ~hwm t;
        let ok =
          Relation.equal
            (C.Oracle.view_at (W.Nway.history w) (W.Nway.view w) t)
            (C.Apply.contents apply)
        in
        rows :=
          [ string_of_int t; string_of_int (Relation.distinct_count (C.Apply.contents apply));
            (if ok then "ok" else "WRONG") ]
          :: !rows
      end)
    [ hwm / 4; hwm / 2; (3 * hwm) / 4; hwm ];
  table
    ~title:
      (Printf.sprintf
         "F3 (Figure 3): point-in-time rolls; db now=%d, hwm=%d, delta rows beyond hwm=%d (ignored)"
         now hwm beyond)
    ~header:[ "roll target"; "view rows"; "vs oracle" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F4 — Figure 4: ComputeDelta cost vs arity, with and without races.  *)
(* ------------------------------------------------------------------ *)

let fig4_compute_delta () =
  let rows = ref [] in
  List.iter
    (fun (n, initial_rows, txns) ->
      let quiet =
        let w = churned_nway ~n ~initial_rows ~txns ~seed:4 () in
        let ctx = ctx_for w in
        ctx.C.Ctx.skip_empty_windows <- false;
        C.Compute_delta.view_delta ctx ~lo:0 ~hi:(Database.now (W.Nway.db w));
        C.Stats.queries ctx.C.Ctx.stats
      in
      let skipped =
        (* Same run with the empty-window skip on, racing with updates; the
           oracle check doubles as a correctness gate. *)
        let w = churned_nway ~n ~initial_rows ~txns ~seed:4 () in
        let ctx = ctx_for w in
        let rng = Prng.create ~seed:40 in
        ctx.C.Ctx.on_execute <- (fun () -> W.Nway.churn w ~n:(Prng.int rng 3));
        let hi = Database.now (W.Nway.db w) in
        C.Compute_delta.view_delta ctx ~lo:0 ~hi;
        check_or_die
          (Printf.sprintf "F4 n=%d oracle" n)
          (C.Oracle.check_timed_view_delta_sampled
             ~sample:(fun t -> t mod 29 = 0)
             (W.Nway.history w) (W.Nway.view w) ctx.C.Ctx.out ~lo:0 ~hi);
        C.Stats.queries ctx.C.Ctx.stats
      in
      rows :=
        [
          string_of_int n;
          string_of_int quiet;
          string_of_int skipped;
          string_of_int ((1 lsl n) - 1);
          string_of_int n;
        ]
        :: !rows)
    [ (1, 80, 120); (2, 80, 120); (3, 30, 60); (4, 12, 30) ];
  table
    ~title:
      "F4 (Figure 4): propagation queries per delta, asynchronous ComputeDelta vs synchronous baselines"
    ~header:
      [ "n-way"; "ComputeDelta full"; "with skip, racing"; "Eq.1 (2^n-1)"; "Eq.2 (n)" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F5 — Figure 5: the propagation interval as a tuning knob.           *)
(* ------------------------------------------------------------------ *)

let fig5_interval_sweep () =
  let rows = ref [] in
  List.iter
    (fun interval ->
      let w = churned_nway ~n:2 ~initial_rows:500 ~txns:800 ~seed:5 () in
      let ctx = ctx_for w in
      let p = C.Propagate.create ctx ~t_initial:0 in
      let (), t = time_it (fun () ->
          C.Propagate.run_until p ~target:(Database.now (W.Nway.db w)) ~interval)
      in
      let sizes = txn_row_sizes ctx.C.Ctx.stats in
      rows :=
        [
          string_of_int interval;
          string_of_int (C.Stats.queries ctx.C.Ctx.stats);
          Printf.sprintf "%.0f" (Summary.mean sizes);
          Printf.sprintf "%.0f" (Summary.max_value sizes);
          string_of_int (C.Stats.rows_read ctx.C.Ctx.stats);
          ms t;
        ]
        :: !rows)
    [ 1; 2; 5; 10; 25; 50; 100; 400 ];
  table
    ~title:
      "F5 (Figure 5): interval sweep, 2-way view, 800 update txns (small = many tiny txns, large = few big ones)"
    ~header:[ "interval"; "queries"; "avg rows/txn"; "max rows/txn"; "total rows"; "time ms" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F6/F7 — Figures 6-7: the L-region and its four-query decomposition. *)
(* ------------------------------------------------------------------ *)

let fig6_7_coverage () =
  let w = churned_nway ~n:2 ~initial_rows:30 ~txns:60 ~seed:6 () in
  let ctx = C.Ctx.create ~geometry:true ~t_initial:0 (W.Nway.db w) (W.Nway.capture w) (W.Nway.view w) in
  ctx.C.Ctx.skip_empty_windows <- false;
  let rng = Prng.create ~seed:60 in
  ctx.C.Ctx.on_execute <- (fun () -> W.Nway.churn w ~n:(1 + Prng.int rng 2));
  let hi = Database.now (W.Nway.db w) in
  C.Compute_delta.view_delta ctx ~lo:0 ~hi;
  let g = Option.get ctx.C.Ctx.geometry in
  check_or_die "F6/7 coverage" (C.Geometry.check g ~hwm:hi);
  print_newline ();
  Printf.printf
    "== F6/F7 (Figures 6-7): ComputeDelta(V, [0;0], %d) under concurrent updates ==\n" hi;
  Printf.printf "%d queries recorded; net coverage over (0,%d]^2 (1 = the delta region):\n"
    (C.Geometry.n_boxes g) hi;
  print_string (C.Geometry.render_2d g ~width:32 ~upto:(Database.now (W.Nway.db w)));
  Printf.printf
    "(axes: R1 time right, R2 time up; '.' = uncovered/compensated, '1' = exactly once;\n";
  Printf.printf " the completed square up to the target is uniform, the overshoot band beyond\n";
  Printf.printf " it shows forward queries awaiting compensation, as in Figure 7)\n"

(* ------------------------------------------------------------------ *)
(* F8 — Figure 8: Propagate tiles the plane in uniform L-steps.        *)
(* ------------------------------------------------------------------ *)

let fig8_propagate_coverage () =
  let w = churned_nway ~n:2 ~initial_rows:30 ~txns:90 ~seed:7 () in
  let ctx = C.Ctx.create ~geometry:true ~t_initial:0 (W.Nway.db w) (W.Nway.capture w) (W.Nway.view w) in
  let p = C.Propagate.create ctx ~t_initial:0 in
  let target = Database.now (W.Nway.db w) in
  C.Propagate.run_until p ~target ~interval:(target / 3) ;
  let g = Option.get ctx.C.Ctx.geometry in
  check_or_die "F8 coverage" (C.Geometry.check g ~hwm:(C.Propagate.hwm p));
  print_newline ();
  Printf.printf "== F8 (Figure 8): three Propagate steps of interval %d ==\n" (target / 3);
  print_string (C.Geometry.render_2d g ~width:32 ~upto:(Database.now (W.Nway.db w)));
  Printf.printf "(each L-step completes before the next begins; hwm=%d)\n" (C.Propagate.hwm p)

(* ------------------------------------------------------------------ *)
(* F9 — Figure 9: rolling coverage with per-relation intervals.        *)
(* ------------------------------------------------------------------ *)

let fig9_rolling_coverage () =
  let run label use_deferred =
    let w = churned_nway ~n:2 ~initial_rows:30 ~txns:90 ~seed:8 () in
    let ctx = C.Ctx.create ~geometry:true ~t_initial:0 (W.Nway.db w) (W.Nway.capture w) (W.Nway.view w) in
    let target = Database.now (W.Nway.db w) in
    let intervals = [| target / 6; target / 2 |] in
    let queries =
      if use_deferred then begin
        let r = C.Rolling_deferred.create ctx ~t_initial:0 in
        C.Rolling_deferred.run_until r ~target
          ~policy:(C.Rolling_deferred.per_relation intervals);
        C.Stats.queries ctx.C.Ctx.stats
      end
      else begin
        let r = C.Rolling.create ctx ~t_initial:0 in
        C.Rolling.run_until r ~target ~policy:(C.Rolling.per_relation intervals);
        let g = Option.get ctx.C.Ctx.geometry in
        check_or_die "F9 coverage" (C.Geometry.check g ~hwm:target);
        print_newline ();
        Printf.printf
          "== F9 (Figure 9): rolling propagation, R1 interval %d vs R2 interval %d ==\n"
          intervals.(0) intervals.(1);
        print_string (C.Geometry.render_2d g ~width:32 ~upto:(Database.now (W.Nway.db w)));
        Printf.printf "(R2's forward queries are wider than R1's, as in Figure 9)\n";
        C.Stats.queries ctx.C.Ctx.stats
      end
    in
    (label, queries)
  in
  let corrected = run "rolling (corrected)" false in
  let deferred = run "rolling (deferred, Fig. 10 literal)" true in
  let propagate =
    let w = churned_nway ~n:2 ~initial_rows:30 ~txns:90 ~seed:8 () in
    let ctx = ctx_for w in
    let target = Database.now (W.Nway.db w) in
    let p = C.Propagate.create ctx ~t_initial:0 in
    C.Propagate.run_until p ~target ~interval:(target / 6);
    ("Propagate at the finer interval", C.Stats.queries ctx.C.Ctx.stats)
  in
  table ~title:"F9: propagation queries to cover the same plane"
    ~header:[ "process"; "queries" ]
    (List.map (fun (l, q) -> [ l; string_of_int q ]) [ propagate; corrected; deferred ])

(* ------------------------------------------------------------------ *)
(* F10 — Figure 10: rolling vs Propagate on skewed update rates.       *)
(* ------------------------------------------------------------------ *)

let fig10_rolling_vs_propagate () =
  let rows = ref [] in
  List.iter
    (fun (label, weights) ->
      let measure algo =
        let w =
          churned_nway ~key_range:40 ~n:3 ~initial_rows:300 ~txns:500 ~weights ~seed:9 ()
        in
        let ctx = ctx_for w in
        let target = Database.now (W.Nway.db w) in
        (match algo with
        | `Uniform interval ->
            let p = C.Propagate.create ctx ~t_initial:0 in
            C.Propagate.run_until p ~target ~interval
        | `Rolling intervals ->
            let r = C.Rolling.create ctx ~t_initial:0 in
            C.Rolling.run_until r ~target ~policy:(C.Rolling.per_relation intervals));
        let sizes = txn_row_sizes ctx.C.Ctx.stats in
        (C.Stats.queries ctx.C.Ctx.stats, C.Stats.rows_read ctx.C.Ctx.stats,
         Summary.max_value sizes)
      in
      let uq, ur, umax = measure (`Uniform 15) in
      let rq, rr, rmax = measure (`Rolling [| 15; 120; 120 |]) in
      rows :=
        [
          label;
          Printf.sprintf "%d / %d / %.0f" uq ur umax;
          Printf.sprintf "%d / %d / %.0f" rq rr rmax;
          (if rr < ur then "rolling" else "uniform");
        ]
        :: !rows)
    [
      ("uniform rates (1:1:1)", [| 1.0; 1.0; 1.0 |]);
      ("skewed 8:1:1", [| 8.0; 1.0; 1.0 |]);
      ("star-like 50:1:1", [| 50.0; 1.0; 1.0 |]);
    ];
  table
    ~title:
      "F10 (Figure 10): Propagate(interval 15) vs Rolling(15/120/120), 3-way view, 500 txns (queries / rows read / max txn rows)"
    ~header:[ "update skew"; "uniform Propagate"; "rolling"; "winner (rows)" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F11 — Figure 11: the full pipeline.                                 *)
(* ------------------------------------------------------------------ *)

let fig11_end_to_end () =
  let chain = W.Chain.create { W.Chain.default_config with initial_orders = 300 } in
  W.Chain.load_initial chain;
  let controller =
    C.Controller.create (W.Chain.db chain) (W.Chain.capture chain) (W.Chain.view chain)
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 400; 20; 20 |]))
  in
  let staleness = Summary.create () in
  let rows = ref [] in
  let gc_total = ref 0 in
  let (), total_time =
    time_it (fun () ->
        for round = 1 to 8 do
          W.Chain.run chain ~n:100;
          (* The propagation process runs a few steps per round (it is
             asynchronous — it may lag). *)
          for _ = 1 to 6 do
            ignore (C.Controller.propagate_step controller)
          done;
          Summary.add staleness
            (float_of_int (Database.now (W.Chain.db chain) - C.Controller.hwm controller));
          if round mod 2 = 0 then begin
            let t = C.Controller.refresh_latest controller in
            gc_total := !gc_total + C.Controller.gc controller;
            rows :=
              [
                Printf.sprintf "round %d" round;
                string_of_int t;
                string_of_int (Relation.distinct_count (C.Controller.contents controller));
              ]
              :: !rows
          end
        done)
  in
  let final = C.Controller.refresh_latest controller in
  let ok =
    Relation.equal
      (C.Oracle.view_at (W.Chain.history chain) (W.Chain.view chain) final)
      (C.Controller.contents controller)
  in
  table ~title:"F11 (Figure 11): WAL -> capture -> propagate -> apply pipeline, 800 order txns"
    ~header:[ "checkpoint"; "refreshed to t"; "view rows" ]
    (List.rev !rows);
  Printf.printf
    "total %.1f ms; staleness now-hwm: mean %.0f max %.0f commits; %d delta rows GCed; final state vs oracle: %s\n"
    (total_time *. 1000.0) (Summary.mean staleness) (Summary.max_value staleness)
    !gc_total
    (if ok then "ok" else "WRONG");
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* C1 — contention claim: transaction size vs lock waits.              *)
(* ------------------------------------------------------------------ *)

let claim_contention () =
  let star = W.Star.create { W.Star.default_config with fact_initial = 600 } in
  W.Star.load_initial star;
  W.Star.mixed_txns star ~n:300 ~dim_fraction:0.05;
  let footprints_for interval =
    let ctx =
      C.Ctx.create ~t_initial:0 (W.Star.db star) (W.Star.capture star) (W.Star.view star)
    in
    (* Each run rebuilds the delta from scratch into a fresh ctx. *)
    let r = C.Rolling.create ctx ~t_initial:0 in
    C.Rolling.run_until r ~target:(Database.now (W.Star.db star))
      ~policy:(C.Rolling.per_relation [| interval; interval * 10; interval * 10 |]);
    C.Stats.footprints ctx.C.Ctx.stats
  in
  let model = Contention.default_costs in
  let tables = [ "fact"; "dim0"; "dim1" ] in
  let oltp () =
    Contention.update_stream (Prng.create ~seed:31) ~tables ~rate:40.0 ~until:15.0
      ~mean_duration:0.004
  in
  let rows = ref [] in
  let run label txns =
    let result = Des.run ~validate:true (txns @ oltp ()) in
    match List.assoc_opt "update" result.Des.classes with
    | Some st ->
        rows :=
          [
            label;
            Printf.sprintf "%.4f" (Summary.mean st.Des.wait);
            Printf.sprintf "%.4f" (Summary.percentile st.Des.wait 0.95);
            Printf.sprintf "%.4f" (Summary.max_value st.Des.wait);
          ]
          :: !rows
    | None -> ()
  in
  List.iter
    (fun interval ->
      let fps = footprints_for interval in
      run
        (Printf.sprintf "rolling, fact interval %d (%d txns)" interval (List.length fps))
        (Contention.propagation_txns model fps ~start:0.5 ~spacing:0.1))
    [ 5; 20; 80 ];
  let fps = footprints_for 20 in
  run "monolithic refresh (same work)"
    [ Contention.monolithic_refresh model fps ~start:0.5 ~tables ];
  table
    ~title:"C1 (Sections 1, 3.2): updater lock waits vs propagation transaction size (simulated s, conflict-validated)"
    ~header:[ "refresh configuration"; "mean wait"; "p95 wait"; "max wait" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* C2 — Equation 1 vs Equation 2.                                      *)
(* ------------------------------------------------------------------ *)

let claim_eq1_eq2 () =
  let rows = ref [] in
  List.iter
    (fun (n, initial_rows, txns) ->
      let w = churned_nway ~n ~initial_rows ~txns ~seed:10 () in
      let hi = Database.now (W.Nway.db w) in
      let lo = hi / 2 in
      let d1, c1 = C.Baseline.eq1 (W.Nway.history w) (W.Nway.view w) ~lo ~hi in
      let d2, c2 = C.Baseline.eq2 (W.Nway.history w) (W.Nway.view w) ~lo ~hi in
      rows :=
        [
          string_of_int n;
          Printf.sprintf "%d / %d" c1.C.Baseline.queries c1.C.Baseline.rows_read;
          Printf.sprintf "%d / %d" c2.C.Baseline.queries c2.C.Baseline.rows_read;
          (if Relation.equal d1 d2 then "equal" else "DIFFER");
        ]
        :: !rows)
    [ (2, 60, 150); (3, 40, 90); (4, 12, 30); (5, 6, 15) ];
  table
    ~title:
      "C2 (Section 3.1): Eq.1 (realizable only at t_b) vs Eq.2 (n queries, unrealizable mixed states) — queries / rows"
    ~header:[ "n-way"; "Eq.1"; "Eq.2"; "deltas" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* C3 — the minimum-timestamp rule.                                    *)
(* ------------------------------------------------------------------ *)

let claim_min_timestamp () =
  let violations rule =
    let total = ref 0 in
    for seed = 1 to 10 do
      let w = churned_nway ~n:2 ~initial_rows:40 ~txns:50 ~seed () in
      let ctx = ctx_for w in
      ctx.C.Ctx.timestamp_rule <- rule;
      let rng = Prng.create ~seed:(seed * 7) in
      ctx.C.Ctx.on_execute <- (fun () -> W.Nway.churn w ~n:(Prng.int rng 3));
      let hi = Database.now (W.Nway.db w) in
      C.Compute_delta.view_delta ctx ~lo:0 ~hi;
      (* Count times t at which the rolled state diverges from the oracle. *)
      for t = 1 to hi do
        let state = C.Oracle.view_at (W.Nway.history w) (W.Nway.view w) 0 in
        Delta.apply_window ctx.C.Ctx.out ~lo:0 ~hi:t state;
        if not (Relation.equal state (C.Oracle.view_at (W.Nway.history w) (W.Nway.view w) t))
        then incr total
      done
    done;
    !total
  in
  let min_v = violations `Min in
  let max_v = violations `Max in
  table
    ~title:"C3 (Section 3.3): timestamp rule ablation — point-in-time states diverging from the oracle (10 runs)"
    ~header:[ "rule"; "inconsistent time points" ]
    [
      [ "minimum (paper)"; string_of_int min_v ];
      [ "maximum (ablation)"; string_of_int max_v ];
    ];
  if min_v <> 0 then begin
    print_endline "!! the minimum rule must be exact";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* A1 — ablation: no compensation.                                     *)
(* ------------------------------------------------------------------ *)

let ablation_no_compensation () =
  let rows = ref [] in
  List.iter
    (fun burst ->
      let run_one seed compensate =
        let w = churned_nway ~n:2 ~initial_rows:100 ~txns:100 ~seed () in
        let ctx = ctx_for w in
        let rng = Prng.create ~seed:(seed * 31) in
        ctx.C.Ctx.on_execute <- (fun () -> W.Nway.churn w ~n:(Prng.int rng (burst + 1)));
        let hi = Database.now (W.Nway.db w) in
        if compensate then C.Compute_delta.view_delta ctx ~lo:0 ~hi
        else begin
          (* Forward queries only — the naive asynchronous approach. *)
          let n = C.View.n_sources (W.Nway.view w) in
          for i = 0 to n - 1 do
            let q =
              C.Pquery.replace (C.Pquery.all_base n) i (C.Pquery.Win { lo = 0; hi })
            in
            ignore (C.Executor.execute ctx ~sign:1 q)
          done;
          (* Subtract the double-counted all-delta part once, as a
             synchronous scheme would — still wrong asynchronously. *)
          let all_delta =
            Array.init n (fun _ -> C.Pquery.Win { lo = 0; hi })
          in
          ignore (C.Executor.execute ctx ~sign:(-1) all_delta)
        end;
        let got = Delta.net_effect ctx.C.Ctx.out ~lo:0 ~hi in
        let expected, _ = C.Baseline.recompute_diff (W.Nway.history w) (W.Nway.view w) ~lo:0 ~hi in
        let diff = Relation.diff got expected in
        Relation.fold (fun _ c acc -> acc + abs c) diff 0
      in
      let run compensate =
        List.fold_left (fun acc seed -> acc + run_one seed compensate) 0
          [ 12; 13; 14; 15; 16 ]
      in
      rows :=
        [
          string_of_int burst;
          string_of_int (run true);
          string_of_int (run false);
        ]
        :: !rows)
    [ 0; 1; 3; 6 ];
  table
    ~title:"A1 (ablation): wrong view-delta rows without recursive compensation, by concurrent-update burst size (sum over 5 seeds)"
    ~header:[ "updates per Execute"; "with compensation"; "without" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* A2 — ablation: hash-join planner vs nested loops.                   *)
(* ------------------------------------------------------------------ *)

let ablation_planner () =
  let rows = ref [] in
  List.iter
    (fun size ->
      let w =
        churned_nway ~key_range:(size / 10) ~initial_rows:size ~n:2 ~txns:50 ~seed:13 ()
      in
      let ctx = ctx_for w in
      let _, planner_time =
        time_it (fun () -> C.Executor.evaluate ctx (C.Pquery.all_base 2))
      in
      let states =
        Array.init 2 (fun i ->
            Roll_storage.History.state_at (W.Nway.history w)
              ~table:(Printf.sprintf "t%d" i)
              (Database.now (W.Nway.db w)))
      in
      let _, naive_time =
        time_it (fun () -> C.Oracle.join_all (W.Nway.view w) states)
      in
      rows :=
        [
          string_of_int size;
          ms planner_time;
          ms naive_time;
          Printf.sprintf "%.1fx" (naive_time /. planner_time);
        ]
        :: !rows)
    [ 300; 1200; 4800 ];
  table
    ~title:"A2 (ablation): 2-way join, hash-join planner vs nested-loop evaluation"
    ~header:[ "rows per table"; "planner ms"; "nested loops ms"; "speedup" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* A3 — ablation: adaptive vs fixed intervals.                          *)
(* ------------------------------------------------------------------ *)

let ablation_autotune () =
  let measure label policy_of =
    let star = W.Star.create { W.Star.default_config with fact_initial = 500 } in
    W.Star.load_initial star;
    W.Star.mixed_txns star ~n:400 ~dim_fraction:0.02;
    let ctx =
      C.Ctx.create ~t_initial:0 (W.Star.db star) (W.Star.capture star)
        (W.Star.view star)
    in
    let r = C.Rolling.create ctx ~t_initial:0 in
    C.Rolling.run_until r
      ~target:(Database.now (W.Star.db star))
      ~policy:(policy_of ctx);
    let sizes = txn_row_sizes ctx.C.Ctx.stats in
    [
      label;
      string_of_int (C.Stats.queries ctx.C.Ctx.stats);
      string_of_int (C.Stats.rows_read ctx.C.Ctx.stats);
      Printf.sprintf "%.0f" (Summary.max_value sizes);
    ]
  in
  table
    ~title:
      "A3 (ablation): adaptive intervals (target 60 delta rows/query) vs fixed guesses, star workload with unknown rates"
    ~header:[ "policy"; "queries"; "rows read"; "max rows/txn" ]
    [
      measure "fixed, uniform 10" (fun _ -> C.Rolling.uniform 10);
      measure "fixed, uniform 100" (fun _ -> C.Rolling.uniform 100);
      measure "adaptive (Autotune)" (fun ctx ->
          C.Autotune.policy (C.Autotune.create ~target_rows:60 ctx));
    ]

(* ------------------------------------------------------------------ *)
(* A4 — ablation: secondary indexes for propagation probes.             *)
(* ------------------------------------------------------------------ *)

let ablation_indexes () =
  let rows = ref [] in
  List.iter
    (fun base_rows ->
      let run indexed =
        let w =
          churned_nway ~key_range:(base_rows / 4) ~initial_rows:base_rows ~n:2
            ~txns:200 ~seed:14 ()
        in
        if indexed then begin
          Roll_storage.Table.create_index
            (Database.table (W.Nway.db w) "t0") ~columns:[ 1 ];
          Roll_storage.Table.create_index
            (Database.table (W.Nway.db w) "t1") ~columns:[ 0 ]
        end;
        let ctx = ctx_for w in
        let r = C.Rolling.create ctx ~t_initial:0 in
        let (), t = time_it (fun () ->
            C.Rolling.run_until r ~target:(Database.now (W.Nway.db w))
              ~policy:(C.Rolling.uniform 10))
        in
        (C.Stats.rows_read ctx.C.Ctx.stats, t)
      in
      let scan_rows, scan_t = run false in
      let ix_rows, ix_t = run true in
      rows :=
        [
          string_of_int base_rows;
          Printf.sprintf "%d / %s" scan_rows (ms scan_t);
          Printf.sprintf "%d / %s" ix_rows (ms ix_t);
          Printf.sprintf "%.1fx" (float_of_int scan_rows /. float_of_int (max 1 ix_rows));
        ]
        :: !rows)
    [ 500; 2000; 8000 ];
  table
    ~title:
      "A4 (ablation): propagation with hash-join scans vs B+-tree index probes (rows touched / ms)"
    ~header:[ "base rows/table"; "scans"; "index probes"; "row reduction" ]
    (List.rev !rows)

let all =
  [
    ("fig1_sync_incremental", fig1_sync_incremental);
    ("fig2_propagate_apply", fig2_propagate_apply);
    ("fig3_point_in_time", fig3_point_in_time);
    ("fig4_compute_delta", fig4_compute_delta);
    ("fig5_interval_sweep", fig5_interval_sweep);
    ("fig6_7_coverage", fig6_7_coverage);
    ("fig8_propagate_coverage", fig8_propagate_coverage);
    ("fig9_rolling_coverage", fig9_rolling_coverage);
    ("fig10_rolling_vs_propagate", fig10_rolling_vs_propagate);
    ("fig11_end_to_end", fig11_end_to_end);
    ("claim_contention", claim_contention);
    ("claim_eq1_eq2", claim_eq1_eq2);
    ("claim_min_timestamp", claim_min_timestamp);
    ("ablation_no_compensation", ablation_no_compensation);
    ("ablation_planner", ablation_planner);
    ("ablation_autotune", ablation_autotune);
    ("ablation_indexes", ablation_indexes);
  ]
