bench/exp_common.ml: List Printf Roll_core Roll_delta Roll_storage Roll_util Roll_workload Unix
