bench/main.mli:
