bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance Lazy List Measure Printf Roll_capture Roll_core Roll_delta Roll_relation Roll_storage Roll_util Roll_workload Staged Test Time Toolkit
