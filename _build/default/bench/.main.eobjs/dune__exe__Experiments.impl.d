bench/experiments.ml: Array C Database Exp_common List Option Printf Prng Roll_capture Roll_delta Roll_relation Roll_sim Roll_storage Summary W
