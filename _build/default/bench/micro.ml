(* Bechamel microbenchmarks: steady-state costs of the core operations.
   One Test.make per operation; results are printed as a table of
   per-run times estimated by OLS. *)

open Bechamel
open Toolkit
module Time_ = Roll_delta.Time
module Delta = Roll_delta.Delta
module Relation = Roll_relation.Relation
module Tuple = Roll_relation.Tuple
module Schema = Roll_relation.Schema
module Value = Roll_relation.Value
module Prng = Roll_util.Prng
module Database = Roll_storage.Database
module C = Roll_core
module W = Roll_workload

let schema = Schema.make [ { Schema.name = "k"; ty = Value.T_int } ]

(* A delta with 100k rows, for window/net-effect costs. *)
let big_delta =
  lazy
    (let d = Delta.create schema in
     let rng = Prng.create ~seed:1 in
     for ts = 1 to 100_000 do
       Delta.append d (Tuple.ints [ Prng.int rng 1000 ]) ~count:1 ~ts
     done;
     ignore (Delta.window_count d ~lo:0 ~hi:1);
     d)

let test_window =
  Test.make ~name:"delta window (1k of 100k rows)" (Staged.stage (fun () ->
      let d = Lazy.force big_delta in
      Delta.window_count d ~lo:50_000 ~hi:51_000))

let test_net_effect =
  Test.make ~name:"delta net effect (10k rows)" (Staged.stage (fun () ->
      let d = Lazy.force big_delta in
      Relation.distinct_count (Delta.net_effect d ~lo:0 ~hi:10_000)))

let join_scenario =
  lazy
    (let w =
       W.Nway.create (W.Nway.config ~key_range:100 ~initial_rows:2000 ~n:2 ~seed:2 ())
     in
     W.Nway.load_initial w;
     W.Nway.churn w ~n:50;
     let ctx =
       C.Ctx.create ~t_initial:0 (W.Nway.db w) (W.Nway.capture w) (W.Nway.view w)
     in
     Roll_capture.Capture.advance (W.Nway.capture w);
     (w, ctx))

let test_join_full =
  Test.make ~name:"2-way hash join (2k x 2k)" (Staged.stage (fun () ->
      let _, ctx = Lazy.force join_scenario in
      C.Executor.evaluate ctx (C.Pquery.all_base 2)))

let test_join_delta =
  Test.make ~name:"delta-probe join (50 txns x 2k)" (Staged.stage (fun () ->
      let w, ctx = Lazy.force join_scenario in
      let hi = Database.now (W.Nway.db w) in
      C.Executor.evaluate ctx [| C.Pquery.Win { lo = hi - 50; hi }; C.Pquery.Base |]))

let test_relation_union =
  Test.make ~name:"relation union (1k tuples)"
    (let r =
       Relation.of_list schema (List.init 1000 (fun i -> (Tuple.ints [ i ], 1)))
     in
     Staged.stage (fun () -> Relation.union r r))

let tests =
  Test.make_grouped ~name:"micro"
    [ test_window; test_net_effect; test_join_full; test_join_delta; test_relation_union ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_newline ();
  print_endline "== microbenchmarks (bechamel, monotonic clock) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let per_run =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.0f ns" x
        | _ -> "-"
      in
      rows := [ name; per_run ] :: !rows)
    results;
  Roll_util.Tablefmt.print ~title:"per-call cost" ~header:[ "operation"; "time" ]
    (List.sort compare !rows)
