type t = Value.t array

let make values = Array.of_list values

let arity = Array.length

let get t i = t.(i)

let concat = Array.append

let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)

let conforms schema t =
  Array.length t = Schema.arity schema
  && begin
       let ok = ref true in
       Array.iteri
         (fun i v -> if not (Value.matches (Schema.column schema i).ty v) then ok := false)
         t;
       !ok
     end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_seq t)

let to_string t = Format.asprintf "%a" pp t

let ints xs = Array.of_list (List.map (fun i -> Value.Int i) xs)

let of_pair a b = [| a; b |]
