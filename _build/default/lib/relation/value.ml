type ty = T_bool | T_int | T_float | T_string

type t = Null | Bool of bool | Int of int | Float of float | Str of string

let type_of = function
  | Null -> None
  | Bool _ -> Some T_bool
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Str _ -> Some T_string

let matches ty v = match type_of v with None -> true | Some ty' -> ty = ty'

let tag = function Null -> 0 | Bool _ -> 1 | Int _ -> 2 | Float _ -> 3 | Str _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

let pp_ty ppf ty =
  Format.pp_print_string ppf
    (match ty with
    | T_bool -> "bool"
    | T_int -> "int"
    | T_float -> "float"
    | T_string -> "string")

let ty_to_string ty = Format.asprintf "%a" pp_ty ty
