type col = { source : int; column : int }

type operand =
  | Col of col
  | Const of Value.t
  | Neg of operand
  | Add of operand * operand
  | Sub of operand * operand
  | Mul of operand * operand
  | Div of operand * operand

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom = Join of col * col | Cmp of cmp * operand * operand

type t = atom list

let col source column = { source; column }

let join a b = Join (a, b)

let cmp op a b = Cmp (op, a, b)

let rec sources_of_operand = function
  | Col c -> [ c.source ]
  | Const _ -> []
  | Neg e -> sources_of_operand e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      sources_of_operand a @ sources_of_operand b

let sources_of_atom atom =
  let raw =
    match atom with
    | Join (a, b) -> [ a.source; b.source ]
    | Cmp (_, x, y) -> sources_of_operand x @ sources_of_operand y
  in
  List.sort_uniq Int.compare raw

let max_source t =
  List.fold_left
    (fun acc atom -> List.fold_left max acc (sources_of_atom atom))
    (-1) t

let eval_cmp op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> false
  | _ ->
      let c = Value.compare a b in
      (match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0)

(* NULL-propagating numeric arithmetic; non-numeric inputs yield NULL. *)
let arith fi ff a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> fi x y
  | Value.Float x, Value.Float y -> ff x y
  | Value.Int x, Value.Float y -> ff (float_of_int x) y
  | Value.Float x, Value.Int y -> ff x (float_of_int y)
  | _ -> Value.Null

let rec eval_operand bindings = function
  | Const v -> v
  | Col c -> Tuple.get bindings.(c.source) c.column
  | Neg e -> (
      match eval_operand bindings e with
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | _ -> Value.Null)
  | Add (a, b) ->
      arith
        (fun x y -> Value.Int (x + y))
        (fun x y -> Value.Float (x +. y))
        (eval_operand bindings a) (eval_operand bindings b)
  | Sub (a, b) ->
      arith
        (fun x y -> Value.Int (x - y))
        (fun x y -> Value.Float (x -. y))
        (eval_operand bindings a) (eval_operand bindings b)
  | Mul (a, b) ->
      arith
        (fun x y -> Value.Int (x * y))
        (fun x y -> Value.Float (x *. y))
        (eval_operand bindings a) (eval_operand bindings b)
  | Div (a, b) ->
      arith
        (fun x y -> if y = 0 then Value.Null else Value.Int (x / y))
        (fun x y -> if y = 0.0 then Value.Null else Value.Float (x /. y))
        (eval_operand bindings a) (eval_operand bindings b)

let eval_atom bindings = function
  | Join (a, b) ->
      eval_cmp Eq
        (Tuple.get bindings.(a.source) a.column)
        (Tuple.get bindings.(b.source) b.column)
  | Cmp (op, x, y) ->
      eval_cmp op (eval_operand bindings x) (eval_operand bindings y)

let holds t bindings = List.for_all (eval_atom bindings) t

let infer_type col_type operand =
  let ( let* ) = Result.bind in
  let numeric what = function
    | Value.T_int -> Ok Value.T_int
    | Value.T_float -> Ok Value.T_float
    | ty ->
        Error
          (Printf.sprintf "%s requires a numeric operand, got %s" what
             (Value.ty_to_string ty))
  in
  let combine what a b =
    let* a = numeric what a in
    let* b = numeric what b in
    match (a, b) with
    | Value.T_int, Value.T_int -> Ok Value.T_int
    | _ -> Ok Value.T_float
  in
  let rec infer = function
    | Col c -> Ok (col_type c)
    | Const v -> (
        match Value.type_of v with
        | Some ty -> Ok ty
        | None -> Error "NULL constant has no type")
    | Neg e ->
        let* ty = infer e in
        numeric "negation" ty
    | Add (a, b) ->
        let* ta = infer a in
        let* tb = infer b in
        combine "addition" ta tb
    | Sub (a, b) ->
        let* ta = infer a in
        let* tb = infer b in
        combine "subtraction" ta tb
    | Mul (a, b) ->
        let* ta = infer a in
        let* tb = infer b in
        combine "multiplication" ta tb
    | Div (a, b) ->
        let* ta = infer a in
        let* tb = infer b in
        combine "division" ta tb
  in
  infer operand

let rec fold_operands f acc operand =
  let acc = f acc operand in
  match operand with
  | Col _ | Const _ -> acc
  | Neg e -> fold_operands f acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      fold_operands f (fold_operands f acc a) b

let pp_col ppf c = Format.fprintf ppf "s%d.c%d" c.source c.column

let rec pp_operand ppf = function
  | Col c -> pp_col ppf c
  | Const v -> Value.pp ppf v
  | Neg e -> Format.fprintf ppf "(- %a)" pp_operand e
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_operand a pp_operand b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_operand a pp_operand b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_operand a pp_operand b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp_operand a pp_operand b

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_atom ppf = function
  | Join (a, b) -> Format.fprintf ppf "%a = %a" pp_col a pp_col b
  | Cmp (op, x, y) ->
      Format.fprintf ppf "%a %s %a" pp_operand x (cmp_symbol op) pp_operand y

let pp ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "true"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " AND ")
        pp_atom ppf t
