(** Selection and join predicates over multi-source bindings.

    A select-project-join view binds one tuple per source relation; a
    predicate is a conjunction of atoms over those bindings. Equi-join atoms
    are distinguished from general comparisons so the executor's planner can
    build hash indexes on them. Comparison operands are arithmetic
    expressions over columns and constants; SQL-style NULL propagation makes
    any expression involving NULL evaluate to NULL, and any comparison
    involving NULL false. *)

type col = { source : int; column : int }
(** A column reference: [source] indexes the view's source list, [column]
    indexes that source's schema. *)

type operand =
  | Col of col
  | Const of Value.t
  | Neg of operand
  | Add of operand * operand
  | Sub of operand * operand
  | Mul of operand * operand
  | Div of operand * operand
      (** Integer arithmetic stays integer ([Div] truncates; division by
          zero yields NULL); mixing in a float makes the result float;
          non-numeric inputs yield NULL. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom =
  | Join of col * col  (** equi-join between two (usually distinct) sources *)
  | Cmp of cmp * operand * operand  (** general comparison *)

type t = atom list
(** A conjunction. The empty list is [true]. *)

val col : int -> int -> col

val join : col -> col -> atom

val cmp : cmp -> operand -> operand -> atom

val sources_of_operand : operand -> int list

val sources_of_atom : atom -> int list
(** Distinct sources referenced by the atom. *)

val max_source : t -> int
(** Largest source index referenced, or [-1] for the empty conjunction. *)

val eval_operand : Tuple.t array -> operand -> Value.t
(** Evaluate with all referenced sources bound; NULL-propagating. *)

val eval_cmp : cmp -> Value.t -> Value.t -> bool
(** SQL-ish semantics: any comparison involving [Null] is false (including
    [Ne]). *)

val eval_atom : Tuple.t array -> atom -> bool
(** [eval_atom bindings atom] evaluates with all sources bound. *)

val holds : t -> Tuple.t array -> bool

val infer_type : (col -> Value.ty) -> operand -> (Value.ty, string) result
(** Static type of an expression given the columns' types: arithmetic needs
    numeric inputs (int with int stays int, anything with float is float);
    [Const Null] and ill-typed arithmetic are errors (a projection column
    must have a type). *)

val fold_operands : ('a -> operand -> 'a) -> 'a -> operand -> 'a
(** Fold over an expression tree (pre-order, including the root). *)

val pp_operand : Format.formatter -> operand -> unit

val pp_atom : Format.formatter -> atom -> unit

val pp : Format.formatter -> t -> unit
