(** Tuples: immutable value arrays.

    The [compare]/[equal]/[hash] triple treats tuples structurally, so they
    can key hash tables and ordered containers (multiset relations, join
    indexes, delta tables). *)

type t = Value.t array

val make : Value.t list -> t

val arity : t -> int

val get : t -> int -> Value.t

val concat : t -> t -> t

val project : t -> int list -> t

val conforms : Schema.t -> t -> bool
(** [conforms schema tuple] holds when arities match and each value matches
    its column type (or is [Null]). *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Convenience constructors for tests and examples. *)

val ints : int list -> t

val of_pair : Value.t -> Value.t -> t
