lib/relation/relation.ml: Format Hashtbl List Schema Tuple
