lib/relation/predicate.ml: Array Format Int List Printf Result Tuple Value
