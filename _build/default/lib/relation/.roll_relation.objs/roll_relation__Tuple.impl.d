lib/relation/tuple.ml: Array Format Int List Schema Value
