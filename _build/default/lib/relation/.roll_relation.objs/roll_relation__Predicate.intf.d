lib/relation/predicate.mli: Format Tuple Value
