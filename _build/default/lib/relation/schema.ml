type column = { name : string; ty : Value.ty }

type t = { cols : column array }

let make cols =
  let seen = Hashtbl.create 8 in
  let check c =
    if Hashtbl.mem seen c.name then
      invalid_arg ("Schema.make: duplicate column " ^ c.name);
    Hashtbl.add seen c.name ()
  in
  List.iter check cols;
  { cols = Array.of_list cols }

let columns t = t.cols

let arity t = Array.length t.cols

let column t i = t.cols.(i)

let find_index t name =
  let rec loop i =
    if i >= Array.length t.cols then None
    else if String.equal t.cols.(i).name name then Some i
    else loop (i + 1)
  in
  loop 0

let index_of t name =
  match find_index t name with Some i -> i | None -> raise Not_found

let equal a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2
       (fun x y -> String.equal x.name y.name && x.ty = y.ty)
       a.cols b.cols

let concat a b =
  let names = Hashtbl.create 8 in
  Array.iter (fun c -> Hashtbl.add names c.name ()) a.cols;
  let fresh name =
    let rec loop n = if Hashtbl.mem names n then loop (n ^ "'") else n in
    let n = loop name in
    Hashtbl.add names n ();
    n
  in
  let b' = Array.map (fun c -> { c with name = fresh c.name }) b.cols in
  { cols = Array.append a.cols b' }

let project t idxs =
  { cols = Array.of_list (List.map (fun i -> t.cols.(i)) idxs) }

let rename_prefix p t =
  { cols = Array.map (fun c -> { c with name = p ^ "." ^ c.name }) t.cols }

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf c -> Format.fprintf ppf "%s:%a" c.name Value.pp_ty c.ty))
    (Array.to_seq t.cols)
