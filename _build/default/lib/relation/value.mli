(** Attribute values.

    The engine is dynamically typed at the value level: a tuple is an array
    of [Value.t]. Schemas (see {!Schema}) declare the intended type of each
    column and are checked on insert. *)

type ty = T_bool | T_int | T_float | T_string

type t = Null | Bool of bool | Int of int | Float of float | Str of string

val type_of : t -> ty option
(** [type_of v] is [None] for [Null]. *)

val matches : ty -> t -> bool
(** [matches ty v] holds when [v] is [Null] or has type [ty]. *)

val compare : t -> t -> int
(** Total order: [Null < Bool < Int < Float < Str]; values of the same
    constructor compare naturally. [Int] and [Float] are distinct types and
    never compare equal. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val pp_ty : Format.formatter -> ty -> unit

val ty_to_string : ty -> string
