(** Relation schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t

val make : column list -> t
(** @raise Invalid_argument on duplicate column names. *)

val columns : t -> column array

val arity : t -> int

val column : t -> int -> column

val index_of : t -> string -> int
(** @raise Not_found when no column has the given name. *)

val find_index : t -> string -> int option

val equal : t -> t -> bool

val concat : t -> t -> t
(** [concat a b] is the schema of the join output [a ++ b]; clashing names
    from [b] are disambiguated with a ["'"] suffix. *)

val project : t -> int list -> t
(** [project t cols] keeps columns at the given indices, in order. *)

val rename_prefix : string -> t -> t
(** [rename_prefix p t] prefixes every column name with ["p."]. *)

val pp : Format.formatter -> t -> unit
