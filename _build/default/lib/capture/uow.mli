(** The unit-of-work table.

    Maps each relevant transaction's identifier to its commit sequence
    number and commit wall-clock timestamp, exactly as DPropR maintains it
    in the paper's prototype (Section 5). Commit sequence numbers are unique
    and consistent with the serialization order; wall timestamps are
    consistent but possibly non-unique. *)

type entry = { txn_id : int; csn : Roll_delta.Time.t; wall : float }

type t

val create : unit -> t

val record : t -> entry -> unit
(** Entries must arrive in CSN order (capture reads the log forward). *)

val length : t -> int

val by_txn : t -> int -> entry option

val wall_of_csn : t -> Roll_delta.Time.t -> float option
(** Wall time of the transaction with exactly this CSN, if it is relevant. *)

val csn_at_wall : t -> float -> Roll_delta.Time.t
(** [csn_at_wall t w] is the CSN of the last relevant transaction with
    commit wall time <= [w] ([Time.origin] when none) — the translation used
    when a point-in-time refresh is requested in wall time. *)

val iter : (entry -> unit) -> t -> unit
