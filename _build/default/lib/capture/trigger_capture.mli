(** Trigger-based change capture — the alternative Section 5 argues
    against, implemented so the argument can be demonstrated.

    A write trigger fires while the transaction is still executing, before
    its serialization order is known, so it can only stamp delta rows with
    a guess. With [`Write_time] stamping (a per-statement sequence), rows
    from transactions that begin and commit in different orders get
    timestamps inconsistent with the serialization order, and the resulting
    deltas are {e not} timed delta tables — point-in-time states built from
    them are wrong (the tests show this concretely). With [`Commit_time]
    stamping — the paper's "commit trigger" remedy, which re-stamps a
    transaction's rows once its commit position is known — the deltas agree
    with log capture.

    This module captures changes for {e all} tables via database triggers;
    it is a diagnostic/pedagogical companion to {!Capture}, not a
    replacement (the propagation machinery uses {!Capture}). *)

type stamping = [ `Write_time | `Commit_time ]

type t

val attach : Roll_storage.Database.t -> stamping:stamping -> string list -> t
(** Install triggers capturing the given tables. Like {!Capture.attach},
    tables must not have logged changes yet.
    @raise Invalid_argument otherwise. *)

val delta : t -> table:string -> Roll_delta.Delta.t
(** The trigger-populated Δ^R. With [`Write_time] stamping its timestamps
    are statement sequence numbers; with [`Commit_time] they are commit
    sequence numbers, identical to log capture's. *)

val matches_log_capture : t -> Capture.t -> table:string -> bool
(** True when this delta's (tuple, count, timestamp) rows equal the
    log-capture delta's, as multisets. *)
