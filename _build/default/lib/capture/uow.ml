module Vec = Roll_util.Vec
module Time = Roll_delta.Time

type entry = { txn_id : int; csn : Time.t; wall : float }

type t = { entries : entry Vec.t; by_txn : (int, entry) Hashtbl.t }

let create () = { entries = Vec.create (); by_txn = Hashtbl.create 64 }

let record t entry =
  (match Vec.last t.entries with
  | Some prev when prev.csn >= entry.csn ->
      invalid_arg "Uow.record: entries must arrive in CSN order"
  | _ -> ());
  Vec.push t.entries entry;
  Hashtbl.replace t.by_txn entry.txn_id entry

let length t = Vec.length t.entries

let by_txn t id = Hashtbl.find_opt t.by_txn id

let wall_of_csn t csn =
  let i = Vec.lower_bound t.entries ~key:(fun e -> e.csn) csn in
  if i < Vec.length t.entries && (Vec.get t.entries i).csn = csn then
    Some (Vec.get t.entries i).wall
  else None

let csn_at_wall t wall =
  (* Last entry with wall <= [wall]. Wall times are non-decreasing in CSN
     order, so binary search applies. *)
  let lo = ref 0 and hi = ref (Vec.length t.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if (Vec.get t.entries mid).wall <= wall then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then Time.origin else (Vec.get t.entries (!lo - 1)).csn

let iter f t = Vec.iter f t.entries
