lib/capture/trigger_capture.mli: Capture Roll_delta Roll_storage
