lib/capture/trigger_capture.ml: Capture Database Hashtbl List Roll_delta Roll_relation Roll_storage String Table Wal
