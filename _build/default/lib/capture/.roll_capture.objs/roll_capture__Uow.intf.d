lib/capture/uow.mli: Roll_delta
