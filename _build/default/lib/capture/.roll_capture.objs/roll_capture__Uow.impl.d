lib/capture/uow.ml: Hashtbl Roll_delta Roll_util
