lib/capture/capture.ml: Database Hashtbl List Logs Roll_delta Roll_storage String Table Uow Wal
