lib/capture/capture.mli: Roll_delta Roll_storage Uow
