open Roll_storage
module Delta = Roll_delta.Delta
module Time = Roll_delta.Time

type stamping = [ `Write_time | `Commit_time ]

type pending = { table : string; tuple : Roll_relation.Tuple.t; count : int; seq : int }

type t = {
  stamping : stamping;
  deltas : (string, Delta.t) Hashtbl.t;
  (* With commit-time stamping, rows wait here until their transaction's
     commit record reveals the serialization order. *)
  pending : (int, pending list) Hashtbl.t;
  mutable next_seq : int;
}

let attach db ~stamping tables =
  let t =
    { stamping; deltas = Hashtbl.create 8; pending = Hashtbl.create 8; next_seq = 1 }
  in
  let wal = Database.wal db in
  List.iter
    (fun table ->
      let missed = ref false in
      Wal.iter_from wal ~pos:0 (fun record ->
          if
            List.exists
              (fun (c : Wal.change) -> String.equal c.table table)
              record.changes
          then missed := true);
      if !missed then
        invalid_arg ("Trigger_capture.attach: table already has logged changes: " ^ table);
      Hashtbl.replace t.deltas table
        (Delta.create (Table.schema (Database.table db table))))
    tables;
  Database.add_write_trigger db (fun ~txn_id (change : Wal.change) ->
      match Hashtbl.find_opt t.deltas change.table with
      | None -> ()
      | Some delta -> (
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          match t.stamping with
          | `Write_time ->
              (* The serialization order is unknown here; the statement
                 sequence is the best a plain trigger can do. *)
              Delta.append delta change.tuple ~count:change.count ~ts:seq
          | `Commit_time ->
              let row = { table = change.table; tuple = change.tuple; count = change.count; seq } in
              Hashtbl.replace t.pending txn_id
                (row
                :: (match Hashtbl.find_opt t.pending txn_id with
                   | Some rows -> rows
                   | None -> []))));
  Database.add_commit_trigger db (fun (record : Wal.record) ->
      match Hashtbl.find_opt t.pending record.txn_id with
      | None -> ()
      | Some rows ->
          Hashtbl.remove t.pending record.txn_id;
          List.iter
            (fun row ->
              match Hashtbl.find_opt t.deltas row.table with
              | None -> ()
              | Some delta ->
                  Delta.append delta row.tuple ~count:row.count ~ts:record.csn)
            (List.rev rows));
  t

let delta t ~table =
  match Hashtbl.find_opt t.deltas table with
  | Some d -> d
  | None -> raise Not_found

let matches_log_capture t capture ~table =
  let ours = delta t ~table in
  let theirs = Capture.delta capture ~table in
  let key (r : Delta.row) = (r.tuple, r.count, r.ts) in
  let sorted d = List.sort compare (List.map key (Delta.to_list d)) in
  sorted ours = sorted theirs
