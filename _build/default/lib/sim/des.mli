(** Discrete-event lock-contention simulator.

    Models the paper's contention story: transactions hold table-granularity
    shared/exclusive locks under strict two-phase locking for their whole
    duration, so a long refresh transaction blocks updaters and readers. To
    stay deadlock-free (as a simulator should), a transaction acquires all
    of its locks atomically at start: it runs when every requested resource
    is compatible with the current holders, otherwise it waits in arrival
    order (later transactions may start ahead of a blocked one only if they
    don't conflict with it or with the holders — a standard no-starvation
    relaxation that avoids convoys).

    Durations are supplied by the caller; the contention experiments derive
    them from the {e measured} row footprints of real propagation runs (see
    {!Contention}). *)

type mode = Shared | Exclusive

type request = { resource : string; mode : mode }

type txn_spec = {
  label : string;  (** class name: stats are aggregated per label *)
  arrival : float;
  duration : float;  (** service time once all locks are held *)
  locks : request list;
}

type class_stats = {
  started : int;
  wait : Roll_util.Summary.t;  (** time from arrival to lock grant *)
  response : Roll_util.Summary.t;  (** time from arrival to completion *)
}

type result = { classes : (string * class_stats) list; makespan : float }

val run : ?validate:bool -> txn_spec list -> result
(** Simulate to completion. Transactions are admitted in arrival order.
    With [validate] (default false), the execution intervals of every pair
    of lock-incompatible transactions are checked for overlap after the
    run. @raise Failure if two conflicting transactions ever ran
    concurrently — a simulator bug, not a workload property. Wait and
    response summaries retain samples, so {!Roll_util.Summary.percentile}
    applies. *)
