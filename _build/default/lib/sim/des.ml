module Heap = Roll_util.Heap
module Summary = Roll_util.Summary

type mode = Shared | Exclusive

type request = { resource : string; mode : mode }

type txn_spec = {
  label : string;
  arrival : float;
  duration : float;
  locks : request list;
}

type class_stats = { started : int; wait : Summary.t; response : Summary.t }

type result = { classes : (string * class_stats) list; makespan : float }

type txn_state = { spec : txn_spec; seq : int }

(* Holder counts per resource: (shared count, exclusive held). *)
type holders = { mutable shared : int; mutable exclusive : bool }

type event = Arrive of txn_state | Finish of txn_state

let compatible holders = function
  | Shared -> not holders.exclusive
  | Exclusive -> (not holders.exclusive) && holders.shared = 0

(* Execution intervals per resource, for post-hoc conflict validation. *)
type span = { s_label : string; s_mode : mode; s_start : float; s_finish : float }

let validate_spans spans_by_resource =
  Hashtbl.iter
    (fun resource spans ->
      let spans = Array.of_list spans in
      let n = Array.length spans in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = spans.(i) and b = spans.(j) in
          let conflict = a.s_mode = Exclusive || b.s_mode = Exclusive in
          let overlap = a.s_start < b.s_finish && b.s_start < a.s_finish in
          if conflict && overlap then
            failwith
              (Printf.sprintf
                 "Des: %s and %s overlap on %s ([%f,%f] vs [%f,%f])" a.s_label
                 b.s_label resource a.s_start a.s_finish b.s_start b.s_finish)
        done
      done)
    spans_by_resource

let run ?(validate = false) specs =
  let events = Heap.create () in
  let seq = ref 0 in
  List.iter
    (fun spec ->
      incr seq;
      Heap.add events ~priority:spec.arrival (Arrive { spec; seq = !seq }))
    specs;
  let resources : (string, holders) Hashtbl.t = Hashtbl.create 16 in
  let holders_of r =
    match Hashtbl.find_opt resources r with
    | Some h -> h
    | None ->
        let h = { shared = 0; exclusive = false } in
        Hashtbl.add resources r h;
        h
  in
  (* Waiting transactions in arrival order. *)
  let waiting : txn_state list ref = ref [] in
  let stats : (string, class_stats) Hashtbl.t = Hashtbl.create 8 in
  let stats_of label =
    match Hashtbl.find_opt stats label with
    | Some s -> s
    | None ->
        let s =
          {
            started = 0;
            wait = Summary.create ~keep_samples:true ();
            response = Summary.create ~keep_samples:true ();
          }
        in
        Hashtbl.add stats label s;
        s
  in
  let spans_by_resource : (string, span list) Hashtbl.t = Hashtbl.create 16 in
  let start_times : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let makespan = ref 0.0 in
  let can_start txn =
    List.for_all (fun req -> compatible (holders_of req.resource) req.mode) txn.spec.locks
  in
  let start now txn =
    List.iter
      (fun req ->
        let h = holders_of req.resource in
        match req.mode with
        | Shared -> h.shared <- h.shared + 1
        | Exclusive -> h.exclusive <- true)
      txn.spec.locks;
    let s = stats_of txn.spec.label in
    Hashtbl.replace stats txn.spec.label { s with started = s.started + 1 };
    Summary.add s.wait (now -. txn.spec.arrival);
    if validate then Hashtbl.replace start_times txn.seq now;
    Heap.add events ~priority:(now +. txn.spec.duration) (Finish txn)
  in
  let release txn =
    List.iter
      (fun req ->
        let h = holders_of req.resource in
        match req.mode with
        | Shared -> h.shared <- h.shared - 1
        | Exclusive -> h.exclusive <- false)
      txn.spec.locks
  in
  (* After any state change, start every waiter that can now run, in
     arrival order. *)
  let drain now =
    let rec loop acc = function
      | [] -> List.rev acc
      | txn :: rest ->
          if can_start txn then begin
            start now txn;
            loop acc rest
          end
          else loop (txn :: acc) rest
    in
    waiting := loop [] !waiting
  in
  let rec pump () =
    match Heap.pop events with
    | None -> ()
    | Some (now, event) ->
        makespan := max !makespan now;
        (match event with
        | Arrive txn ->
            if can_start txn && !waiting = [] then start now txn
            else if can_start txn then begin
              (* May overtake waiters only if it conflicts with none of
                 them (no-starvation relaxation). *)
              let conflicts_with_waiter =
                List.exists
                  (fun w ->
                    List.exists
                      (fun (a : request) ->
                        List.exists
                          (fun (b : request) ->
                            String.equal a.resource b.resource
                            && (a.mode = Exclusive || b.mode = Exclusive))
                          w.spec.locks)
                      txn.spec.locks)
                  !waiting
              in
              if conflicts_with_waiter then waiting := !waiting @ [ txn ]
              else start now txn
            end
            else waiting := !waiting @ [ txn ]
        | Finish txn ->
            release txn;
            if validate then begin
              let started = Hashtbl.find start_times txn.seq in
              List.iter
                (fun (req : request) ->
                  let span =
                    { s_label = txn.spec.label; s_mode = req.mode;
                      s_start = started; s_finish = now }
                  in
                  Hashtbl.replace spans_by_resource req.resource
                    (span
                    :: (match Hashtbl.find_opt spans_by_resource req.resource with
                       | Some l -> l
                       | None -> [])))
                txn.spec.locks
            end;
            Summary.add (stats_of txn.spec.label).response (now -. txn.spec.arrival);
            drain now);
        pump ()
  in
  pump ();
  if validate then validate_spans spans_by_resource;
  let classes =
    Hashtbl.fold (fun label s acc -> (label, s) :: acc) stats []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { classes; makespan = !makespan }
