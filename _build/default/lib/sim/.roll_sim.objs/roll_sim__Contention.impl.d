lib/sim/contention.ml: Array Des List Roll_core Roll_util
