lib/sim/des.mli: Roll_util
