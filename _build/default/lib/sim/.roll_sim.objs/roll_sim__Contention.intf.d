lib/sim/contention.mli: Des Roll_core Roll_util
