lib/sim/des.ml: Array Hashtbl List Printf Roll_util String
