type token =
  | Select
  | From
  | Join
  | On
  | Where
  | And
  | As
  | Union
  | All
  | True
  | False
  | Null
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Dot
  | Comma
  | LParen
  | RParen
  | Plus
  | Minus
  | Star
  | Slash
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

exception Error of string

let fail pos msg = raise (Error (Printf.sprintf "at character %d: %s" pos msg))

let keyword_of = function
  | "select" -> Some Select
  | "from" -> Some From
  | "join" -> Some Join
  | "on" -> Some On
  | "where" -> Some Where
  | "and" -> Some And
  | "as" -> Some As
  | "union" -> Some Union
  | "all" -> Some All
  | "true" -> Some True
  | "false" -> Some False
  | "null" -> Some Null
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit token = tokens := token :: !tokens in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  while !pos < n do
    let c = input.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char input.[!pos] do
        incr pos
      done;
      let word = String.sub input start (!pos - start) in
      match keyword_of (String.lowercase_ascii word) with
      | Some kw -> emit kw
      | None -> emit (Ident word)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit input.[!pos] do
        incr pos
      done;
      let is_float =
        !pos < n && input.[!pos] = '.' && !pos + 1 < n && is_digit input.[!pos + 1]
      in
      if is_float then begin
        incr pos;
        while !pos < n && is_digit input.[!pos] do
          incr pos
        done;
        emit (Float (float_of_string (String.sub input start (!pos - start))))
      end
      else emit (Int (int_of_string (String.sub input start (!pos - start))))
    end
    else if c = '\'' then begin
      let start = !pos in
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        match peek () with
        | None -> fail start "unterminated string literal"
        | Some '\'' ->
            if !pos + 1 < n && input.[!pos + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              pos := !pos + 2
            end
            else begin
              incr pos;
              closed := true
            end
        | Some ch ->
            Buffer.add_char buf ch;
            incr pos
      done;
      emit (String (Buffer.contents buf))
    end
    else begin
      let two =
        if !pos + 1 < n then String.sub input !pos 2 else ""
      in
      match two with
      | "<>" | "!=" ->
          emit Ne;
          pos := !pos + 2
      | "<=" ->
          emit Le;
          pos := !pos + 2
      | ">=" ->
          emit Ge;
          pos := !pos + 2
      | _ -> (
          match c with
          | '.' -> emit Dot; incr pos
          | ',' -> emit Comma; incr pos
          | '(' -> emit LParen; incr pos
          | ')' -> emit RParen; incr pos
          | '+' -> emit Plus; incr pos
          | '-' -> emit Minus; incr pos
          | '*' -> emit Star; incr pos
          | '/' -> emit Slash; incr pos
          | '=' -> emit Eq; incr pos
          | '<' -> emit Lt; incr pos
          | '>' -> emit Gt; incr pos
          | _ -> fail !pos (Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit Eof;
  List.rev !tokens

let describe = function
  | Select -> "SELECT"
  | From -> "FROM"
  | Join -> "JOIN"
  | On -> "ON"
  | Where -> "WHERE"
  | And -> "AND"
  | As -> "AS"
  | Union -> "UNION"
  | All -> "ALL"
  | True -> "TRUE"
  | False -> "FALSE"
  | Null -> "NULL"
  | Ident s -> Printf.sprintf "identifier %s" s
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | String s -> Printf.sprintf "'%s'" s
  | Dot -> "."
  | Comma -> ","
  | LParen -> "("
  | RParen -> ")"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eof -> "end of input"
