open Roll_relation
module View = Roll_core.View

exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let fail msg = raise (Parse_error msg)

let peek st = match st.tokens with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st token what =
  if peek st = token then advance st
  else
    fail
      (Printf.sprintf "expected %s but found %s" what (Lexer.describe (peek st)))

let ident st what =
  match peek st with
  | Lexer.Ident name ->
      advance st;
      name
  | t -> fail (Printf.sprintf "expected %s but found %s" what (Lexer.describe t))

(* alias.column *)
let column_ref st =
  let alias = ident st "an alias" in
  expect st Lexer.Dot "'.'";
  let column = ident st "a column name" in
  (alias, column)

type expr =
  | E_col of string * string
  | E_const of Value.t
  | E_neg of expr
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr
  | E_div of expr * expr

(* expr := term (('+'|'-') term)*
   term := factor (('*'|'/') factor)*
   factor := '-' factor | '(' expr ')' | literal | alias.column *)
let rec expression st =
  let rec additive acc =
    match peek st with
    | Lexer.Plus ->
        advance st;
        additive (E_add (acc, term st))
    | Lexer.Minus ->
        advance st;
        additive (E_sub (acc, term st))
    | _ -> acc
  in
  additive (term st)

and term st =
  let rec multiplicative acc =
    match peek st with
    | Lexer.Star ->
        advance st;
        multiplicative (E_mul (acc, factor st))
    | Lexer.Slash ->
        advance st;
        multiplicative (E_div (acc, factor st))
    | _ -> acc
  in
  multiplicative (factor st)

and factor st =
  match peek st with
  | Lexer.Minus ->
      advance st;
      E_neg (factor st)
  | Lexer.LParen ->
      advance st;
      let e = expression st in
      expect st Lexer.RParen "')'";
      e
  | Lexer.Ident _ -> let a, c = column_ref st in E_col (a, c)
  | Lexer.Int i ->
      advance st;
      E_const (Value.Int i)
  | Lexer.Float f ->
      advance st;
      E_const (Value.Float f)
  | Lexer.String s ->
      advance st;
      E_const (Value.Str s)
  | Lexer.True ->
      advance st;
      E_const (Value.Bool true)
  | Lexer.False ->
      advance st;
      E_const (Value.Bool false)
  | Lexer.Null ->
      advance st;
      E_const Value.Null
  | t -> fail ("expected an expression but found " ^ Lexer.describe t)

let comparison st =
  match peek st with
  | Lexer.Eq -> advance st; Predicate.Eq
  | Lexer.Ne -> advance st; Predicate.Ne
  | Lexer.Lt -> advance st; Predicate.Lt
  | Lexer.Le -> advance st; Predicate.Le
  | Lexer.Gt -> advance st; Predicate.Gt
  | Lexer.Ge -> advance st; Predicate.Ge
  | t -> fail ("expected a comparison operator but found " ^ Lexer.describe t)

type raw_atom = { cmp : Predicate.cmp; left : expr; right : expr }

let atom st =
  let left = expression st in
  let cmp = comparison st in
  let right = expression st in
  { cmp; left; right }

let conjunction st =
  let rec loop acc =
    let a = atom st in
    if peek st = Lexer.And then begin
      advance st;
      loop (a :: acc)
    end
    else List.rev (a :: acc)
  in
  loop []

type raw_query = {
  projections : (expr * string option) list;  (** expression, AS name *)
  sources : (string * string) list;  (** (table, alias) in FROM order *)
  atoms : raw_atom list;
}

let parse_block st =
  expect st Lexer.Select "SELECT";
  let projection () =
    let e = expression st in
    if peek st = Lexer.As then begin
      advance st;
      (e, Some (ident st "an output column name"))
    end
    else (e, None)
  in
  let rec projs acc =
    let p = projection () in
    if peek st = Lexer.Comma then begin
      advance st;
      projs (p :: acc)
    end
    else List.rev (p :: acc)
  in
  let projections = projs [] in
  expect st Lexer.From "FROM";
  let table = ident st "a table name" in
  let alias = ident st "an alias" in
  let rec joins acc =
    if peek st = Lexer.Join then begin
      advance st;
      let table = ident st "a table name" in
      let alias = ident st "an alias" in
      expect st Lexer.On "ON";
      let atoms = conjunction st in
      joins ((table, alias, atoms) :: acc)
    end
    else List.rev acc
  in
  let joined = joins [] in
  let where =
    if peek st = Lexer.Where then begin
      advance st;
      conjunction st
    end
    else []
  in
  {
    projections;
    sources = (table, alias) :: List.map (fun (t, a, _) -> (t, a)) joined;
    atoms = List.concat_map (fun (_, _, atoms) -> atoms) joined @ where;
  }

let parse_blocks st =
  let rec loop acc =
    let block = parse_block st in
    if peek st = Lexer.Union then begin
      advance st;
      expect st Lexer.All "ALL (only UNION ALL is supported)";
      loop (block :: acc)
    end
    else List.rev (block :: acc)
  in
  let blocks = loop [] in
  expect st Lexer.Eof "end of input";
  blocks

let build_view ?names db ~name raw =
  let bind alias column =
    try View.binder db raw.sources alias column with
    | Invalid_argument msg -> fail msg
    | Not_found -> fail (Printf.sprintf "unknown table for alias %s" alias)
  in
  let rec resolve = function
    | E_col (alias, column) -> Predicate.Col (bind alias column)
    | E_const v -> Predicate.Const v
    | E_neg e -> Predicate.Neg (resolve e)
    | E_add (a, b) -> Predicate.Add (resolve a, resolve b)
    | E_sub (a, b) -> Predicate.Sub (resolve a, resolve b)
    | E_mul (a, b) -> Predicate.Mul (resolve a, resolve b)
    | E_div (a, b) -> Predicate.Div (resolve a, resolve b)
  in
  let to_atom (a : raw_atom) =
    match (a.cmp, resolve a.left, resolve a.right) with
    | Predicate.Eq, Predicate.Col x, Predicate.Col y when x.source <> y.source ->
        Predicate.Join (x, y)
    | cmp, left, right -> Predicate.Cmp (cmp, left, right)
  in
  let predicate = List.map to_atom raw.atoms in
  let select =
    List.mapi
      (fun i (e, as_name) ->
        let default =
          match e with
          | E_col (alias, column) -> alias ^ "_" ^ column
          | _ -> Printf.sprintf "expr%d" i
        in
        let col_name =
          match names with
          | Some ns when i < List.length ns -> List.nth ns i
          | _ -> ( match as_name with Some n -> n | None -> default)
        in
        (col_name, resolve e))
      raw.projections
  in
  try View.create_select db ~name ~sources:raw.sources ~predicate ~select
  with
  | Invalid_argument msg -> fail msg
  | Not_found -> fail "unknown table in FROM/JOIN"

let parse_tokens sql =
  try Lexer.tokenize sql with Lexer.Error msg -> fail msg

let parse_view db ~name sql =
  let st = { tokens = parse_tokens sql } in
  match parse_blocks st with
  | [ raw ] -> build_view db ~name raw
  | _ -> fail "UNION ALL statements need parse_union"

let parse_union db ~name sql =
  let st = { tokens = parse_tokens sql } in
  match parse_blocks st with
  | [] -> fail "empty statement"
  | first_raw :: rest_raw ->
      let first = build_view db ~name:(name ^ "#0") first_raw in
      (* Later blocks take the first block's output column names — UNION
         compatibility is positional, by type. *)
      let names =
        List.map
          (fun (c : Schema.column) -> c.Schema.name)
          (Array.to_list (Schema.columns (View.output_schema first)))
      in
      let rest =
        List.mapi
          (fun i raw ->
            if List.length raw.projections <> List.length names then
              fail "UNION ALL blocks have different arities";
            build_view ~names db ~name:(Printf.sprintf "%s#%d" name (i + 1)) raw)
          rest_raw
      in
      let views = first :: rest in
      let schema = View.output_schema first in
      List.iter
        (fun v ->
          if not (Schema.equal (View.output_schema v) schema) then
            fail "UNION ALL blocks have different output schemas")
        rest;
      views

let quote_string str =
  let buf = Buffer.create (String.length str + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    str;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let print_view view =
  let col_ref (c : Predicate.col) =
    let alias = View.alias view c.source in
    let column = (Schema.column (View.source_schema view c.source) c.column).Schema.name in
    alias ^ "." ^ column
  in
  let rec expr = function
    | Predicate.Col c -> col_ref c
    | Predicate.Const (Value.Int i) ->
        if i < 0 then Printf.sprintf "(0 - %d)" (-i) else string_of_int i
    | Predicate.Const (Value.Float f) ->
        if f < 0.0 then Printf.sprintf "(0 - %F)" (-.f) else Printf.sprintf "%F" f
    | Predicate.Const (Value.Str str) -> quote_string str
    | Predicate.Const (Value.Bool true) -> "TRUE"
    | Predicate.Const (Value.Bool false) -> "FALSE"
    | Predicate.Const Value.Null -> "NULL"
    | Predicate.Neg e -> Printf.sprintf "(- %s)" (expr e)
    | Predicate.Add (a, b) -> Printf.sprintf "(%s + %s)" (expr a) (expr b)
    | Predicate.Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr a) (expr b)
    | Predicate.Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr a) (expr b)
    | Predicate.Div (a, b) -> Printf.sprintf "(%s / %s)" (expr a) (expr b)
  in
  let cmp = function
    | Predicate.Eq -> "="
    | Predicate.Ne -> "<>"
    | Predicate.Lt -> "<"
    | Predicate.Le -> "<="
    | Predicate.Gt -> ">"
    | Predicate.Ge -> ">="
  in
  let atom = function
    | Predicate.Join (a, b) -> Printf.sprintf "%s = %s" (col_ref a) (col_ref b)
    | Predicate.Cmp (op, x, y) ->
        Printf.sprintf "%s %s %s" (expr x) (cmp op) (expr y)
  in
  (* Distribute atoms to the latest source they mention, as a human would:
     each JOIN's ON clause gets the atoms whose last source is that join
     (inner-join semantics make any split equivalent); atoms over the first
     source only, or over constants, go to WHERE. A join with no atoms gets
     a trivially-true ON. *)
  let last_source a =
    List.fold_left max 0 (Predicate.sources_of_atom a)
  in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (col_name, e) ->
            match e with
            | Predicate.Col _ -> expr e
            | _ -> Printf.sprintf "%s AS %s" (expr e) col_name)
          (View.projection view)));
  Buffer.add_string buf
    (Printf.sprintf " FROM %s %s" (View.source_table view 0) (View.alias view 0));
  for i = 1 to View.n_sources view - 1 do
    Buffer.add_string buf
      (Printf.sprintf " JOIN %s %s ON " (View.source_table view i)
         (View.alias view i));
    match List.filter (fun a -> last_source a = i) (View.predicate view) with
    | [] -> Buffer.add_string buf "0 = 0"
    | atoms -> Buffer.add_string buf (String.concat " AND " (List.map atom atoms))
  done;
  (match List.filter (fun a -> last_source a = 0) (View.predicate view) with
  | [] -> ()
  | atoms ->
      Buffer.add_string buf " WHERE ";
      Buffer.add_string buf (String.concat " AND " (List.map atom atoms)));
  Buffer.contents buf
