(** A small SQL-ish surface for view definitions.

    {v SELECT o.okey, c.name
       FROM orders o
       JOIN customer c ON o.ckey = c.ckey AND o.total > 100
       WHERE c.region = 'EU' v}

    Restricted to the class the paper's algorithms cover: inner equi/theta
    joins of named tables with conjunctive predicates and column
    projection. Aggregates and unions are handled by the library API
    ({!Roll_core.Aggregate}, {!Roll_core.Union_view}), not the parser. *)

exception Parse_error of string

val parse_view :
  Roll_storage.Database.t -> name:string -> string -> Roll_core.View.t
(** [parse_view db ~name sql] resolves table and column names against [db]
    and builds a validated view definition.
    @raise Parse_error on syntax errors, unknown tables/columns/aliases, or
    an unsupported construct. *)

val parse_union :
  Roll_storage.Database.t -> name:string -> string -> Roll_core.View.t list
(** Parse a [SELECT … UNION ALL SELECT …] statement into one view per
    block (named ["name#0"], ["name#1"], …) for {!Roll_core.Union_view}.
    A single block (no UNION) yields a one-element list.
    @raise Parse_error as {!parse_view}; block output schemas must agree. *)

val print_view : Roll_core.View.t -> string
(** Render a view definition back to the DSL. [parse_view (print_view v)]
    yields a view equivalent to [v] (all predicate atoms end up in the
    WHERE clause, which is semantically identical for inner joins). *)
