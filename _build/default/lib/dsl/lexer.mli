(** Tokenizer for the view-definition DSL. *)

type token =
  | Select
  | From
  | Join
  | On
  | Where
  | And
  | As
  | Union
  | All
  | True
  | False
  | Null
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Dot
  | Comma
  | LParen
  | RParen
  | Plus
  | Minus
  | Star
  | Slash
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

exception Error of string
(** Raised with a message that includes the character position. *)

val tokenize : string -> token list
(** Keywords are case-insensitive; identifiers are [\[A-Za-z_\]\[A-Za-z0-9_\]*];
    strings are single-quoted with ['']-doubling for embedded quotes.
    Numeric literals are unsigned — unary minus is a parser concern. *)

val describe : token -> string
