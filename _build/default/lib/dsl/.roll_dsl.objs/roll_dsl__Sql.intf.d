lib/dsl/sql.mli: Roll_core Roll_storage
