lib/dsl/sql.ml: Array Buffer Lexer List Predicate Printf Roll_core Roll_relation Schema String Value
