lib/dsl/lexer.mli:
