(** A TPC-style order-processing workload over a three-way chain join:

    {v customer(ckey, region) ⋈ orders(okey, ckey, total)
                              ⋈ lineitem(okey, qty) v}

    The maintained view is the join of the three, filtered to orders above
    a configurable total — the "open big orders per customer region" view a
    reporting dashboard would materialize. Orders and lineitems churn;
    customers are nearly static. *)

type config = {
  n_customers : int;
  initial_orders : int;
  lines_per_order : int;  (** average *)
  min_total : int;  (** view filter: orders with total above this *)
  seed : int;
}

val default_config : config

type t

val create : config -> t

val db : t -> Roll_storage.Database.t

val capture : t -> Roll_capture.Capture.t

val view : t -> Roll_core.View.t

val history : t -> Roll_storage.History.t

val load_initial : t -> unit

val order_txn : t -> unit
(** Place a new order with its line items, or (1 in 4) cancel an existing
    order, deleting its lines. *)

val run : t -> n:int -> unit
