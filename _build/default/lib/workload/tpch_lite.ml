open Roll_relation
module Prng = Roll_util.Prng
module Vec = Roll_util.Vec
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module History = Roll_storage.History
module View = Roll_core.View

type config = {
  n_regions : int;
  nations_per_region : int;
  n_customers : int;
  initial_orders : int;
  lines_per_order : int;
  seed : int;
}

let default_config =
  {
    n_regions = 5;
    nations_per_region = 5;
    n_customers = 100;
    initial_orders = 300;
    lines_per_order = 3;
    seed = 29;
  }

let small_config =
  {
    n_regions = 2;
    nations_per_region = 2;
    n_customers = 8;
    initial_orders = 15;
    lines_per_order = 2;
    seed = 29;
  }

type order = { okey : int; ckey : int; total : int; lines : Tuple.t list }

type t = {
  config : config;
  db : Database.t;
  capture : Capture.t;
  history : History.t;
  view : View.t;
  rng : Prng.t;
  live_orders : order Vec.t;
  mutable next_okey : int;
  mutable next_ckey : int;
}

let int_col name = { Schema.name; ty = Value.T_int }

let create config =
  let db = Database.create () in
  let tables =
    [
      ("region", [ int_col "rkey"; int_col "rname" ]);
      ("nation", [ int_col "nkey"; int_col "rkey" ]);
      ("customer", [ int_col "ckey"; int_col "nkey" ]);
      ("orders", [ int_col "okey"; int_col "ckey"; int_col "total" ]);
      ("lineitem", [ int_col "okey"; int_col "qty" ]);
    ]
  in
  List.iter
    (fun (name, cols) -> ignore (Database.create_table db ~name (Schema.make cols)))
    tables;
  let capture = Capture.create db in
  List.iter (fun (name, _) -> Capture.attach capture ~table:name) tables;
  let sources =
    [ ("region", "r"); ("nation", "n"); ("customer", "c"); ("orders", "o");
      ("lineitem", "l") ]
  in
  let bind = View.binder db sources in
  let view =
    View.create db ~name:"global_orders" ~sources
      ~predicate:
        [
          Predicate.join (bind "r" "rkey") (bind "n" "rkey");
          Predicate.join (bind "n" "nkey") (bind "c" "nkey");
          Predicate.join (bind "c" "ckey") (bind "o" "ckey");
          Predicate.join (bind "o" "okey") (bind "l" "okey");
        ]
      ~project:
        [ bind "r" "rname"; bind "n" "nkey"; bind "o" "okey"; bind "o" "total";
          bind "l" "qty" ]
  in
  {
    config;
    db;
    capture;
    history = History.create db;
    view;
    rng = Prng.create ~seed:config.seed;
    live_orders = Vec.create ();
    next_okey = 0;
    next_ckey = 0;
  }

let db t = t.db

let capture t = t.capture

let view t = t.view

let history t = t.history

let n_nations t = t.config.n_regions * t.config.nations_per_region

let new_customer t txn =
  let ckey = t.next_ckey in
  t.next_ckey <- ckey + 1;
  Database.insert txn ~table:"customer"
    (Tuple.ints [ ckey; Prng.int t.rng (n_nations t) ])

let new_order t =
  let okey = t.next_okey in
  t.next_okey <- okey + 1;
  let ckey = Prng.int t.rng (max 1 t.next_ckey) in
  let total = 5 + Prng.int t.rng 200 in
  let n_lines = 1 + Prng.int t.rng (2 * t.config.lines_per_order) in
  let lines = List.init n_lines (fun _ -> Tuple.ints [ okey; 1 + Prng.int t.rng 50 ]) in
  { okey; ckey; total; lines }

let insert_order txn (o : order) =
  Database.insert txn ~table:"orders" (Tuple.ints [ o.okey; o.ckey; o.total ]);
  List.iter (fun line -> Database.insert txn ~table:"lineitem" line) o.lines

let delete_order txn (o : order) =
  Database.delete txn ~table:"orders" (Tuple.ints [ o.okey; o.ckey; o.total ]);
  List.iter (fun line -> Database.delete txn ~table:"lineitem" line) o.lines

let load_initial t =
  ignore
    (Database.run t.db (fun txn ->
         for rkey = 0 to t.config.n_regions - 1 do
           Database.insert txn ~table:"region" (Tuple.ints [ rkey; 100 + rkey ])
         done;
         for nkey = 0 to n_nations t - 1 do
           Database.insert txn ~table:"nation"
             (Tuple.ints [ nkey; nkey mod t.config.n_regions ])
         done));
  ignore
    (Database.run t.db (fun txn ->
         for _ = 1 to t.config.n_customers do
           new_customer t txn
         done));
  let remaining = ref t.config.initial_orders in
  while !remaining > 0 do
    let batch = min 50 !remaining in
    ignore
      (Database.run t.db (fun txn ->
           for _ = 1 to batch do
             let o = new_order t in
             Vec.push t.live_orders o;
             insert_order txn o
           done));
    remaining := !remaining - batch
  done

let churn t ~n =
  for _ = 1 to n do
    ignore
      (Database.run t.db (fun txn ->
           match Prng.int t.rng 20 with
           | 0 -> new_customer t txn
           | 1 | 2 | 3 when Vec.length t.live_orders > 0 ->
               let i = Prng.int t.rng (Vec.length t.live_orders) in
               let o = Vec.get t.live_orders i in
               let last = Vec.length t.live_orders - 1 in
               Vec.set t.live_orders i (Vec.get t.live_orders last);
               ignore (Vec.pop t.live_orders);
               delete_order txn o
           | _ ->
               let o = new_order t in
               Vec.push t.live_orders o;
               insert_order txn o))
  done
