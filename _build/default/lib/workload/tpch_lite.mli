(** A five-table TPC-H-flavoured workload:

    {v region(rkey, rname)
       nation(nkey, rkey)
       customer(ckey, nkey)
       orders(okey, ckey, total)
       lineitem(okey, qty) v}

    The maintained view is the full five-way chain join — the widest case
    the benches and tests exercise. Region and nation are static after
    load; customers trickle in; orders and line items churn constantly, so
    the five relations span the whole spectrum of update rates the rolling
    algorithm's per-relation intervals are for. *)

type config = {
  n_regions : int;
  nations_per_region : int;
  n_customers : int;
  initial_orders : int;
  lines_per_order : int;
  seed : int;
}

val default_config : config

val small_config : config
(** Tiny sizes whose five-way cross product the nested-loop oracle can
    still enumerate — for correctness tests. *)

type t

val create : config -> t

val db : t -> Roll_storage.Database.t

val capture : t -> Roll_capture.Capture.t

val view : t -> Roll_core.View.t
(** Source order: region, nation, customer, orders, lineitem. *)

val history : t -> Roll_storage.History.t

val load_initial : t -> unit

val churn : t -> n:int -> unit
(** [n] transactions: mostly order placement/cancellation with line items,
    occasionally a new customer. *)
