module Vec = Roll_util.Vec
module Prng = Roll_util.Prng

type t = { items : Roll_relation.Tuple.t Vec.t }

let create () = { items = Vec.create () }

let size t = Vec.length t.items

let is_empty t = Vec.is_empty t.items

let add t tuple = Vec.push t.items tuple

let pick t rng =
  if Vec.is_empty t.items then None
  else Some (Vec.get t.items (Prng.int rng (Vec.length t.items)))

let take t rng =
  if Vec.is_empty t.items then None
  else begin
    let i = Prng.int rng (Vec.length t.items) in
    let x = Vec.get t.items i in
    let last = Vec.length t.items - 1 in
    Vec.set t.items i (Vec.get t.items last);
    ignore (Vec.pop t.items);
    Some x
  end
