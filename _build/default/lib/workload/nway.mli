(** Generic n-way chain-join workload for benches and experiments.

    n tables T0(k0, k1), T1(k1, k2), …, T(n-1)(k(n-1), v), chain-joined on
    the shared key columns, with a churn driver that inserts and deletes
    rows with keys drawn from a small domain (so joins actually produce
    output). Per-table update weights skew the churn, modelling relations
    that evolve at different rates. *)

type config = {
  n : int;
  key_range : int;
  initial_rows : int;  (** per table *)
  insert_bias : float;
  weights : float array;  (** relative update frequency per table *)
  seed : int;
}

val config : ?key_range:int -> ?initial_rows:int -> ?insert_bias:float ->
  ?weights:float array -> ?seed:int -> n:int -> unit -> config

type t

val create : config -> t

val db : t -> Roll_storage.Database.t

val capture : t -> Roll_capture.Capture.t

val view : t -> Roll_core.View.t

val history : t -> Roll_storage.History.t

val load_initial : t -> unit

val churn : t -> n:int -> unit
(** Commit [n] small transactions against weighted-random tables. *)
