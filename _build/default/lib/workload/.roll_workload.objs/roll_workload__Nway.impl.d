lib/workload/nway.ml: Array List Live_set Predicate Printf Roll_capture Roll_core Roll_relation Roll_storage Roll_util Schema Tuple Value
