lib/workload/live_set.ml: Roll_relation Roll_util
