lib/workload/chain.mli: Roll_capture Roll_core Roll_storage
