lib/workload/nway.mli: Roll_capture Roll_core Roll_storage
