lib/workload/chain.ml: List Predicate Roll_capture Roll_core Roll_relation Roll_storage Roll_util Schema Tuple Value
