lib/workload/live_set.mli: Roll_relation Roll_util
