lib/workload/tpch_lite.mli: Roll_capture Roll_core Roll_storage
