lib/workload/star.mli: Roll_capture Roll_core Roll_storage
