open Roll_relation
module Prng = Roll_util.Prng
module Zipf = Roll_util.Zipf
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module History = Roll_storage.History
module View = Roll_core.View
module Predicate = Roll_relation.Predicate

type config = {
  n_dimensions : int;
  dim_size : int;
  fact_initial : int;
  zipf_theta : float;
  fact_insert_bias : float;
  seed : int;
}

let default_config =
  {
    n_dimensions = 2;
    dim_size = 100;
    fact_initial = 1000;
    zipf_theta = 0.8;
    fact_insert_bias = 0.7;
    seed = 17;
  }

type t = {
  config : config;
  db : Database.t;
  capture : Capture.t;
  history : History.t;
  view : View.t;
  rng : Prng.t;
  zipf : Zipf.t;
  fact_live : Live_set.t;
  (* Current attribute value per dimension row, so updates can delete the
     exact old tuple. *)
  dim_attrs : int array array;
  mutable fact_seq : int;
}

let fact_name = "fact"

let dim_name i = Printf.sprintf "dim%d" i

let int_col name = { Schema.name; ty = Value.T_int }

let create config =
  if config.n_dimensions < 1 then invalid_arg "Star.create: need a dimension";
  let db = Database.create () in
  let fact_cols =
    List.init config.n_dimensions (fun i -> int_col (Printf.sprintf "d%d_key" i))
    @ [ int_col "measure" ]
  in
  let _ = Database.create_table db ~name:fact_name (Schema.make fact_cols) in
  for i = 0 to config.n_dimensions - 1 do
    ignore
      (Database.create_table db ~name:(dim_name i)
         (Schema.make [ int_col "key"; int_col "attr" ]))
  done;
  let capture = Capture.create db in
  Capture.attach capture ~table:fact_name;
  for i = 0 to config.n_dimensions - 1 do
    Capture.attach capture ~table:(dim_name i)
  done;
  let sources =
    (fact_name, "f")
    :: List.init config.n_dimensions (fun i -> (dim_name i, Printf.sprintf "d%d" i))
  in
  let bind = View.binder db sources in
  let predicate =
    List.init config.n_dimensions (fun i ->
        let alias = Printf.sprintf "d%d" i in
        Predicate.join (bind "f" (Printf.sprintf "d%d_key" i)) (bind alias "key"))
  in
  let project =
    bind "f" "measure"
    :: List.concat
         (List.init config.n_dimensions (fun i ->
              let alias = Printf.sprintf "d%d" i in
              [ bind alias "key"; bind alias "attr" ]))
  in
  let view = View.create db ~name:"star" ~sources ~predicate ~project in
  {
    config;
    db;
    capture;
    history = History.create db;
    view;
    rng = Prng.create ~seed:config.seed;
    zipf = Zipf.create ~n:config.dim_size ~theta:config.zipf_theta;
    fact_live = Live_set.create ();
    dim_attrs = Array.make_matrix config.n_dimensions config.dim_size 0;
    fact_seq = 0;
  }

let db t = t.db

let capture t = t.capture

let view t = t.view

let history t = t.history

let fact_table _ = fact_name

let dim_table _ i = dim_name i

let random_fact_tuple t =
  let keys =
    List.init t.config.n_dimensions (fun _ -> Zipf.sample t.zipf t.rng)
  in
  t.fact_seq <- t.fact_seq + 1;
  Tuple.ints (keys @ [ t.fact_seq mod 97 ])

let load_initial t =
  for i = 0 to t.config.n_dimensions - 1 do
    ignore
      (Database.run t.db (fun txn ->
           for key = 0 to t.config.dim_size - 1 do
             let attr = Prng.int t.rng 1000 in
             t.dim_attrs.(i).(key) <- attr;
             Database.insert txn ~table:(dim_name i) (Tuple.ints [ key; attr ])
           done))
  done;
  (* Fact rows in batches of 100 so the initial load occupies several
     commit times rather than one giant transaction. *)
  let remaining = ref t.config.fact_initial in
  while !remaining > 0 do
    let batch = min 100 !remaining in
    ignore
      (Database.run t.db (fun txn ->
           for _ = 1 to batch do
             let tuple = random_fact_tuple t in
             Live_set.add t.fact_live tuple;
             Database.insert txn ~table:fact_name tuple
           done));
    remaining := !remaining - batch
  done

let fact_txn t =
  ignore
    (Database.run t.db (fun txn ->
         let ops = 1 + Prng.int t.rng 4 in
         for _ = 1 to ops do
           if
             Prng.chance t.rng t.config.fact_insert_bias
             || Live_set.is_empty t.fact_live
           then begin
             let tuple = random_fact_tuple t in
             Live_set.add t.fact_live tuple;
             Database.insert txn ~table:fact_name tuple
           end
           else
             match Live_set.take t.fact_live t.rng with
             | Some tuple -> Database.delete txn ~table:fact_name tuple
             | None -> ()
         done))

let dim_txn t =
  let i = Prng.int t.rng t.config.n_dimensions in
  let key = Prng.int t.rng t.config.dim_size in
  let old_attr = t.dim_attrs.(i).(key) in
  let new_attr = Prng.int t.rng 1000 in
  t.dim_attrs.(i).(key) <- new_attr;
  ignore
    (Database.run t.db (fun txn ->
         Database.update txn ~table:(dim_name i)
           ~old_tuple:(Tuple.ints [ key; old_attr ])
           ~new_tuple:(Tuple.ints [ key; new_attr ])))

let mixed_txns t ~n ~dim_fraction =
  for _ = 1 to n do
    if Prng.chance t.rng dim_fraction then dim_txn t else fact_txn t
  done
