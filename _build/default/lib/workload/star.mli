(** Star-schema workload: the shape the paper's Section 3.4 motivates.

    A central fact table referencing [n_dimensions] dimension tables. The
    fact table is updated constantly (Zipf-skewed dimension keys); the
    dimension tables change rarely. The maintained view is the full star
    join. With a uniform propagation interval the fact deltas dwarf the
    dimension deltas; rolling propagation assigns each relation its own
    interval. Source 0 of the view is the fact table; sources 1..n are the
    dimensions. *)

type config = {
  n_dimensions : int;
  dim_size : int;  (** rows per dimension *)
  fact_initial : int;  (** fact rows loaded before maintenance starts *)
  zipf_theta : float;  (** skew of fact→dimension key popularity *)
  fact_insert_bias : float;  (** probability a fact operation is an insert *)
  seed : int;
}

val default_config : config

type t

val create : config -> t

val db : t -> Roll_storage.Database.t

val capture : t -> Roll_capture.Capture.t

val view : t -> Roll_core.View.t

val history : t -> Roll_storage.History.t

val fact_table : t -> string

val dim_table : t -> int -> string

val load_initial : t -> unit
(** Bulk-load dimensions and the initial fact rows (committed in batches so
    the log stays realistic). Call once, before creating maintenance
    contexts is fine — capture is attached at [create] time. *)

val fact_txn : t -> unit
(** One small fact-table transaction (1–4 inserts/deletes). *)

val dim_txn : t -> unit
(** One dimension update (modify an attribute of a random dimension row). *)

val mixed_txns : t -> n:int -> dim_fraction:float -> unit
(** Commit [n] transactions, each a dimension update with probability
    [dim_fraction], otherwise a fact transaction. *)
