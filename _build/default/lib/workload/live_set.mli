(** Multiset of live tuples with O(1) random pick and removal.

    Workload generators must delete {e existing} rows; scanning a table for
    a random victim would be O(table). A live set shadows the generator's
    own inserts/deletes (one entry per multiset copy) using swap-remove. *)

type t

val create : unit -> t

val size : t -> int

val is_empty : t -> bool

val add : t -> Roll_relation.Tuple.t -> unit

val pick : t -> Roll_util.Prng.t -> Roll_relation.Tuple.t option
(** Uniformly random live tuple (without removing it). *)

val take : t -> Roll_util.Prng.t -> Roll_relation.Tuple.t option
(** Remove and return a uniformly random live tuple. *)
