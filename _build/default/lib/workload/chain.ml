open Roll_relation
module Prng = Roll_util.Prng
module Vec = Roll_util.Vec
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module History = Roll_storage.History
module View = Roll_core.View

type config = {
  n_customers : int;
  initial_orders : int;
  lines_per_order : int;
  min_total : int;
  seed : int;
}

let default_config =
  { n_customers = 50; initial_orders = 200; lines_per_order = 3; min_total = 40; seed = 23 }

type order = { okey : int; ckey : int; total : int; lines : Tuple.t list }

type t = {
  config : config;
  db : Database.t;
  capture : Capture.t;
  history : History.t;
  view : View.t;
  rng : Prng.t;
  live_orders : order Vec.t;
  mutable next_okey : int;
}

let int_col name = { Schema.name; ty = Value.T_int }

let create config =
  let db = Database.create () in
  let _ =
    Database.create_table db ~name:"customer"
      (Schema.make [ int_col "ckey"; int_col "region" ])
  in
  let _ =
    Database.create_table db ~name:"orders"
      (Schema.make [ int_col "okey"; int_col "ckey"; int_col "total" ])
  in
  let _ =
    Database.create_table db ~name:"lineitem"
      (Schema.make [ int_col "okey"; int_col "qty" ])
  in
  let capture = Capture.create db in
  List.iter (fun table -> Capture.attach capture ~table)
    [ "customer"; "orders"; "lineitem" ];
  let sources = [ ("customer", "c"); ("orders", "o"); ("lineitem", "l") ] in
  let bind = View.binder db sources in
  let view =
    View.create db ~name:"big_orders" ~sources
      ~predicate:
        [
          Predicate.join (bind "c" "ckey") (bind "o" "ckey");
          Predicate.join (bind "o" "okey") (bind "l" "okey");
          Predicate.cmp Predicate.Gt
            (Predicate.Col (bind "o" "total"))
            (Predicate.Const (Value.Int config.min_total));
        ]
      ~project:[ bind "c" "region"; bind "o" "okey"; bind "o" "total"; bind "l" "qty" ]
  in
  {
    config;
    db;
    capture;
    history = History.create db;
    view;
    rng = Prng.create ~seed:config.seed;
    live_orders = Vec.create ();
    next_okey = 0;
  }

let db t = t.db

let capture t = t.capture

let view t = t.view

let history t = t.history

let new_order t =
  let okey = t.next_okey in
  t.next_okey <- okey + 1;
  let ckey = Prng.int t.rng t.config.n_customers in
  let total = 10 + Prng.int t.rng 100 in
  let n_lines = 1 + Prng.int t.rng (2 * t.config.lines_per_order) in
  let lines =
    List.init n_lines (fun _ -> Tuple.ints [ okey; 1 + Prng.int t.rng 20 ])
  in
  { okey; ckey; total; lines }

let insert_order txn (o : order) =
  Database.insert txn ~table:"orders" (Tuple.ints [ o.okey; o.ckey; o.total ]);
  List.iter (fun line -> Database.insert txn ~table:"lineitem" line) o.lines

let delete_order txn (o : order) =
  Database.delete txn ~table:"orders" (Tuple.ints [ o.okey; o.ckey; o.total ]);
  List.iter (fun line -> Database.delete txn ~table:"lineitem" line) o.lines

let load_initial t =
  ignore
    (Database.run t.db (fun txn ->
         for ckey = 0 to t.config.n_customers - 1 do
           Database.insert txn ~table:"customer"
             (Tuple.ints [ ckey; ckey mod 5 ])
         done));
  let remaining = ref t.config.initial_orders in
  while !remaining > 0 do
    let batch = min 50 !remaining in
    ignore
      (Database.run t.db (fun txn ->
           for _ = 1 to batch do
             let o = new_order t in
             Vec.push t.live_orders o;
             insert_order txn o
           done));
    remaining := !remaining - batch
  done

let order_txn t =
  let cancel = Prng.int t.rng 4 = 0 && Vec.length t.live_orders > 0 in
  ignore
    (Database.run t.db (fun txn ->
         if cancel then begin
           let i = Prng.int t.rng (Vec.length t.live_orders) in
           let o = Vec.get t.live_orders i in
           let last = Vec.length t.live_orders - 1 in
           Vec.set t.live_orders i (Vec.get t.live_orders last);
           ignore (Vec.pop t.live_orders);
           delete_order txn o
         end
         else begin
           let o = new_order t in
           Vec.push t.live_orders o;
           insert_order txn o
         end))

let run t ~n =
  for _ = 1 to n do
    order_txn t
  done
