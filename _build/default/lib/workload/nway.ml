open Roll_relation
module Prng = Roll_util.Prng
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module History = Roll_storage.History
module View = Roll_core.View

type config = {
  n : int;
  key_range : int;
  initial_rows : int;
  insert_bias : float;
  weights : float array;
  seed : int;
}

let config ?(key_range = 10) ?(initial_rows = 50) ?(insert_bias = 0.65)
    ?weights ?(seed = 11) ~n () =
  let weights = match weights with Some w -> w | None -> Array.make n 1.0 in
  if Array.length weights <> n then invalid_arg "Nway.config: weights arity";
  { n; key_range; initial_rows; insert_bias; weights; seed }

type t = {
  config : config;
  db : Database.t;
  capture : Capture.t;
  history : History.t;
  view : View.t;
  rng : Prng.t;
  live : Live_set.t array;
  cumulative : float array;  (** prefix sums of weights, normalized *)
}

let table_name i = Printf.sprintf "t%d" i

let int_col name = { Schema.name; ty = Value.T_int }

let create config =
  if config.n < 1 then invalid_arg "Nway.create: n must be positive";
  let db = Database.create () in
  for i = 0 to config.n - 1 do
    ignore
      (Database.create_table db ~name:(table_name i)
         (Schema.make [ int_col "a"; int_col "b" ]))
  done;
  let capture = Capture.create db in
  for i = 0 to config.n - 1 do
    Capture.attach capture ~table:(table_name i)
  done;
  let sources = List.init config.n (fun i -> (table_name i, Printf.sprintf "x%d" i)) in
  let bind = View.binder db sources in
  let predicate =
    List.init (config.n - 1) (fun i ->
        Predicate.join
          (bind (Printf.sprintf "x%d" i) "b")
          (bind (Printf.sprintf "x%d" (i + 1)) "a"))
  in
  let project =
    List.init config.n (fun i -> bind (Printf.sprintf "x%d" i) "b")
  in
  let view = View.create db ~name:"chain" ~sources ~predicate ~project in
  let total = Array.fold_left ( +. ) 0.0 config.weights in
  let acc = ref 0.0 in
  let cumulative =
    Array.map
      (fun w ->
        acc := !acc +. (w /. total);
        !acc)
      config.weights
  in
  {
    config;
    db;
    capture;
    history = History.create db;
    view;
    rng = Prng.create ~seed:config.seed;
    live = Array.init config.n (fun _ -> Live_set.create ());
    cumulative;
  }

let db t = t.db

let capture t = t.capture

let view t = t.view

let history t = t.history

let random_tuple t =
  Tuple.ints [ Prng.int t.rng t.config.key_range; Prng.int t.rng t.config.key_range ]

let load_initial t =
  for i = 0 to t.config.n - 1 do
    let remaining = ref t.config.initial_rows in
    while !remaining > 0 do
      let batch = min 50 !remaining in
      ignore
        (Database.run t.db (fun txn ->
             for _ = 1 to batch do
               let tuple = random_tuple t in
               Live_set.add t.live.(i) tuple;
               Database.insert txn ~table:(table_name i) tuple
             done));
      remaining := !remaining - batch
    done
  done

let pick_table t =
  let u = Prng.float t.rng 1.0 in
  let rec find i = if i >= t.config.n - 1 || t.cumulative.(i) >= u then i else find (i + 1) in
  find 0

let churn t ~n =
  for _ = 1 to n do
    let i = pick_table t in
    ignore
      (Database.run t.db (fun txn ->
           let ops = 1 + Prng.int t.rng 3 in
           for _ = 1 to ops do
             if Prng.chance t.rng t.config.insert_bias || Live_set.is_empty t.live.(i)
             then begin
               let tuple = random_tuple t in
               Live_set.add t.live.(i) tuple;
               Database.insert txn ~table:(table_name i) tuple
             end
             else
               match Live_set.take t.live.(i) t.rng with
               | Some tuple -> Database.delete txn ~table:(table_name i) tuple
               | None -> ()
           done))
  done
