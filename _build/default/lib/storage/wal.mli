(** Write-ahead log.

    Every committed transaction appends one commit record carrying its
    commit sequence number (= {!Roll_delta.Time.t}), a wall-clock timestamp,
    and its changes. Propagation-query transactions write [Marker] records —
    this reproduces the prototype's "special global table" trick (Section 5)
    by which the propagate driver learns the serialization time of each
    maintenance query. The capture process (see {!Roll_capture.Capture})
    reads the log through a cursor. *)

type change = {
  table : string;
  tuple : Roll_relation.Tuple.t;
  count : int;  (** +n insertion of n copies, -n deletion *)
}

type record = {
  csn : Roll_delta.Time.t;
  txn_id : int;
  wall : float;
  changes : change list;
  marker : string option;
      (** [Some tag] for propagation-query marker commits. *)
}

type t

val create : unit -> t

val append : t -> record -> unit
(** @raise Invalid_argument if [csn] is not strictly increasing. *)

val length : t -> int

val get : t -> int -> record

val iter_from : t -> pos:int -> (record -> unit) -> unit
(** [iter_from t ~pos f] applies [f] to records at positions [pos, ...]
    in order. *)

val last_csn : t -> Roll_delta.Time.t
(** [Time.origin] when empty. *)
