(** Base tables: named multiset relations holding current committed state. *)

type t

val create : name:string -> Roll_relation.Schema.t -> t

val name : t -> string

val schema : t -> Roll_relation.Schema.t

val contents : t -> Roll_relation.Relation.t
(** The live relation. Callers must treat it as read-only; all mutation goes
    through {!Database} commits. *)

val cardinality : t -> int
(** Total tuple count (multiset size). *)

val mem : t -> Roll_relation.Tuple.t -> bool

val count : t -> Roll_relation.Tuple.t -> int

val apply_change : t -> Roll_relation.Tuple.t -> int -> unit
(** Used by {!Database.commit} only. @raise Invalid_argument if the change
    would make a tuple's multiplicity negative. *)

(** {1 Secondary indexes}

    B+-tree indexes over a projection of the table's columns, maintained on
    every committed change. The join executor probes them instead of
    building a per-query hash index, which is what makes small propagation
    queries cheap on large base tables. *)

val create_index : t -> columns:int list -> unit
(** Build (and thereafter maintain) an index keyed by the given columns;
    backfills from current contents. Idempotent for an existing column
    list. @raise Invalid_argument on out-of-range columns. *)

val has_index : t -> columns:int list -> bool

val indexed_columns : t -> int list list

val index_probe : t -> columns:int list -> Roll_relation.Tuple.t -> Roll_relation.Tuple.t list
(** All row copies whose projection on [columns] equals the key (one list
    element per multiset copy). @raise Not_found if no such index. *)
