lib/storage/database.mli: Roll_delta Roll_relation Table Wal
