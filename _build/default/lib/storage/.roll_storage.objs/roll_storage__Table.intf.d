lib/storage/table.mli: Roll_relation
