lib/storage/history.mli: Database Roll_delta Roll_relation
