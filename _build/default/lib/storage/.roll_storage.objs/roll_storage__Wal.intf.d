lib/storage/wal.mli: Roll_delta Roll_relation
