lib/storage/database.ml: Format Hashtbl List Roll_delta Roll_relation String Table Tuple Wal
