lib/storage/wal.ml: Roll_delta Roll_relation Roll_util
