lib/storage/history.ml: Database Hashtbl List Relation Roll_delta Roll_relation String Table Wal
