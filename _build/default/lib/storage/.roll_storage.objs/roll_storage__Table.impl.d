lib/storage/table.ml: Btree Format List Printf Relation Roll_relation Schema Tuple
