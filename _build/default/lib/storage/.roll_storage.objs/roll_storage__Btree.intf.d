lib/storage/btree.mli:
