lib/storage/wal_codec.ml: Array Buffer Database Fun List Printf Roll_relation Scanf String Tuple Value Wal
