lib/storage/wal_codec.mli: Buffer Database Roll_relation Wal
