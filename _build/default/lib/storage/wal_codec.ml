open Roll_relation

exception Corrupt of string

let magic = "ROLLWAL 1"

(* --- value encoding --- *)

let encode_value_raw buf = function
  | Value.Null -> Buffer.add_string buf "null"
  | Value.Bool true -> Buffer.add_string buf "true"
  | Value.Bool false -> Buffer.add_string buf "false"
  | Value.Int i -> Buffer.add_string buf (Printf.sprintf "int %d" i)
  | Value.Float f -> Buffer.add_string buf (Printf.sprintf "float %h" f)
  | Value.Str s -> Buffer.add_string buf (Printf.sprintf "str %S" s)

let decode_value line =
  match line with
  | "null" -> Value.Null
  | "true" -> Value.Bool true
  | "false" -> Value.Bool false
  | _ ->
      if String.length line > 4 && String.sub line 0 4 = "int " then
        Value.Int (int_of_string (String.sub line 4 (String.length line - 4)))
      else if String.length line > 6 && String.sub line 0 6 = "float " then
        Value.Float (float_of_string (String.sub line 6 (String.length line - 6)))
      else if String.length line > 4 && String.sub line 0 4 = "str " then
        Scanf.sscanf (String.sub line 4 (String.length line - 4)) "%S" (fun s ->
            Value.Str s)
      else raise (Corrupt ("bad value: " ^ line))

(* --- save --- *)

let save wal out =
  output_string out magic;
  output_char out '\n';
  Wal.iter_from wal ~pos:0 (fun record ->
      Printf.fprintf out "R %d %d %h\n" record.Wal.csn record.Wal.txn_id
        record.Wal.wall;
      (match record.Wal.marker with
      | Some tag -> Printf.fprintf out "M %S\n" tag
      | None -> ());
      List.iter
        (fun (c : Wal.change) ->
          Printf.fprintf out "C %S %d %d\n" c.table c.count
            (Tuple.arity c.tuple);
          Array.iter
            (fun v ->
              let buf = Buffer.create 16 in
              Buffer.add_string buf "V ";
              encode_value_raw buf v;
              Buffer.add_char buf '\n';
              output_string out (Buffer.contents buf))
            c.tuple)
        record.Wal.changes;
      output_string out "E\n")

let save_file wal path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> save wal out)

(* --- load --- *)

type reader = { input : in_channel; mutable line_no : int }

let next_line reader =
  match input_line reader.input with
  | line ->
      reader.line_no <- reader.line_no + 1;
      Some line
  | exception End_of_file -> None

let corrupt reader msg =
  raise (Corrupt (Printf.sprintf "line %d: %s" reader.line_no msg))

let load input =
  let reader = { input; line_no = 0 } in
  (match next_line reader with
  | Some line when line = magic -> ()
  | Some line -> corrupt reader ("bad header: " ^ line)
  | None -> corrupt reader "empty file");
  let records = ref [] in
  let rec read_record () =
    match next_line reader with
    | None -> ()
    | Some line ->
        let csn, txn_id, wall =
          try Scanf.sscanf line "R %d %d %h" (fun a b c -> (a, b, c))
          with Scanf.Scan_failure _ | Failure _ | End_of_file ->
            corrupt reader ("expected record header, got: " ^ line)
        in
        let marker = ref None in
        let changes = ref [] in
        let rec read_body () =
          match next_line reader with
          | None -> corrupt reader "unterminated record"
          | Some "E" -> ()
          | Some line when String.length line > 2 && String.sub line 0 2 = "M " ->
              (marker :=
                 try Scanf.sscanf line "M %S" (fun t -> Some t)
                 with Scanf.Scan_failure _ | End_of_file ->
                   corrupt reader "bad marker");
              read_body ()
          | Some line when String.length line > 2 && String.sub line 0 2 = "C " ->
              let table, count, arity =
                try Scanf.sscanf line "C %S %d %d" (fun t c a -> (t, c, a))
                with Scanf.Scan_failure _ | End_of_file ->
                  corrupt reader "bad change header"
              in
              let values =
                Array.init arity (fun _ ->
                    match next_line reader with
                    | Some line
                      when String.length line > 2 && String.sub line 0 2 = "V "
                      -> (
                        try decode_value (String.sub line 2 (String.length line - 2))
                        with Corrupt msg -> corrupt reader msg)
                    | Some line -> corrupt reader ("expected value, got: " ^ line)
                    | None -> corrupt reader "unterminated change")
              in
              changes := { Wal.table; tuple = values; count } :: !changes;
              read_body ()
          | Some line -> corrupt reader ("unexpected line: " ^ line)
        in
        read_body ();
        records :=
          { Wal.csn; txn_id; wall; changes = List.rev !changes; marker = !marker }
          :: !records;
        read_record ()
  in
  read_record ();
  List.rev !records

let load_file path =
  let input = open_in path in
  Fun.protect ~finally:(fun () -> close_in input) (fun () -> load input)

let restore db records = Database.restore db records

let encode_value buf v suffix =
  encode_value_raw buf v;
  Buffer.add_string buf suffix
