module Vec = Roll_util.Vec
module Time = Roll_delta.Time

type change = { table : string; tuple : Roll_relation.Tuple.t; count : int }

type record = {
  csn : Time.t;
  txn_id : int;
  wall : float;
  changes : change list;
  marker : string option;
}

type t = { records : record Vec.t }

let create () = { records = Vec.create () }

let append t record =
  (match Vec.last t.records with
  | Some prev when prev.csn >= record.csn ->
      invalid_arg "Wal.append: commit sequence numbers must increase"
  | _ -> ());
  Vec.push t.records record

let length t = Vec.length t.records

let get t i = Vec.get t.records i

let iter_from t ~pos f =
  Vec.iter_range f t.records ~lo:pos ~hi:(Vec.length t.records)

let last_csn t =
  match Vec.last t.records with None -> Time.origin | Some r -> r.csn
