(** Binary min-heaps keyed by a float priority.

    Used as the event queue of the discrete-event contention simulator.
    Entries with equal priority are dequeued in insertion order, which keeps
    simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
(** [peek h] is the minimum-priority entry without removing it. *)

val pop : 'a t -> (float * 'a) option
(** [pop h] removes and returns the minimum-priority entry. *)
