type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let grow v filler =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let data' = Array.make cap' filler in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let iter_range f v ~lo ~hi =
  let lo = max 0 lo and hi = min v.len hi in
  for i = lo to hi - 1 do
    f v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let lower_bound v ~key k =
  (* Invariant: key of every element before [lo] is < k; key of every
     element at or after [hi] is >= k. *)
  let lo = ref 0 and hi = ref v.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key v.data.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo
