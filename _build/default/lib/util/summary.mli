(** Streaming numeric summaries.

    Accumulates count / mean / variance (Welford) plus min and max; used by
    the benches and the contention simulator to report series without
    retaining samples. *)

type t

val create : ?keep_samples:bool -> unit -> t
(** With [keep_samples] (default false), samples are retained so
    {!percentile} works; otherwise only streaming statistics are kept. *)

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0. when empty. *)

val stddev : t -> float

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val total : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 1\]], by nearest-rank over retained
    samples. @raise Invalid_argument if samples were not kept or [t] is
    empty. *)

val pp : Format.formatter -> t -> unit
