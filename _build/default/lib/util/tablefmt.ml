let render ~header rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows
  in
  let pad row = row @ List.init (ncols - List.length row) (fun _ -> "") in
  let all = List.map pad (header :: rows) in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  (match all with
  | header :: rows ->
      emit header;
      let rule = List.init ncols (fun i -> String.make widths.(i) '-') in
      emit rule;
      List.iter emit rows
  | [] -> ());
  Buffer.contents buf

let print ~title ~header rows =
  print_newline ();
  print_endline ("== " ^ title ^ " ==");
  print_string (render ~header rows)
