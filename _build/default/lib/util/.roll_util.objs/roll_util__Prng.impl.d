lib/util/prng.ml: Array Random
