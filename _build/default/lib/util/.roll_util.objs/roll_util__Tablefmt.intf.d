lib/util/tablefmt.mli:
