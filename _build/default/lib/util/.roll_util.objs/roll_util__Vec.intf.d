lib/util/vec.mli:
