lib/util/prng.mli:
