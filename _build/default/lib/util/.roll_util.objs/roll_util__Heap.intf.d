lib/util/heap.mli:
