lib/util/summary.ml: Array Format Vec
