(** Aligned ASCII table rendering for bench and example output. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] lays out [rows] under [header] with columns padded
    to the widest cell, separated by two spaces, with a dashed rule under the
    header. Short rows are padded with empty cells. *)

val print : title:string -> header:string list -> string list list -> unit
(** [print ~title ~header rows] writes a titled table to stdout. *)
