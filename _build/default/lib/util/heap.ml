type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = { mutable entries : 'a entry Vec.t; mutable next_seq : int }

let create () = { entries = Vec.create (); next_seq = 0 }

let length h = Vec.length h.entries

let is_empty h = Vec.is_empty h.entries

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap v i j =
  let x = Vec.get v i in
  Vec.set v i (Vec.get v j);
  Vec.set v j x

let rec sift_up v i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (Vec.get v i) (Vec.get v parent) then begin
      swap v i parent;
      sift_up v parent
    end
  end

let rec sift_down v i =
  let n = Vec.length v in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && less (Vec.get v l) (Vec.get v !smallest) then smallest := l;
  if r < n && less (Vec.get v r) (Vec.get v !smallest) then smallest := r;
  if !smallest <> i then begin
    swap v i !smallest;
    sift_down v !smallest
  end

let add h ~priority value =
  let entry = { prio = priority; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  Vec.push h.entries entry;
  sift_up h.entries (Vec.length h.entries - 1)

let peek h =
  if Vec.is_empty h.entries then None
  else
    let e = Vec.get h.entries 0 in
    Some (e.prio, e.value)

let pop h =
  let n = Vec.length h.entries in
  if n = 0 then None
  else begin
    let top = Vec.get h.entries 0 in
    swap h.entries 0 (n - 1);
    ignore (Vec.pop h.entries);
    if not (Vec.is_empty h.entries) then sift_down h.entries 0;
    Some (top.prio, top.value)
  end
