type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable total : float;
  samples : float Vec.t option;
}

let create ?(keep_samples = false) () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    total = 0.0;
    samples = (if keep_samples then Some (Vec.create ()) else None);
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.total <- t.total +. x;
  match t.samples with Some v -> Vec.push v x | None -> ()

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

let min_value t = t.min_v

let max_value t = t.max_v

let total t = t.total

let percentile t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Summary.percentile: p out of range";
  match t.samples with
  | None -> invalid_arg "Summary.percentile: samples were not kept"
  | Some v ->
      let n = Vec.length v in
      if n = 0 then invalid_arg "Summary.percentile: no samples";
      let sorted = Array.of_list (Vec.to_list v) in
      Array.sort compare sorted;
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
    (stddev t) t.min_v t.max_v
