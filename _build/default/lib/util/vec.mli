(** Growable arrays.

    A [Vec.t] is an append-mostly dynamic array. It is the backing store for
    write-ahead logs and delta tables, which only ever grow at the end, so
    the interface is deliberately small: push, random access, iteration, and
    binary search over a monotone key. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push v x] appends [x] at the end of [v]. Amortized O(1). *)

val get : 'a t -> int -> 'a
(** [get v i] is the [i]th element. @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit

val last : 'a t -> 'a option

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, if any. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val iter_range : ('a -> unit) -> 'a t -> lo:int -> hi:int -> unit
(** [iter_range f v ~lo ~hi] applies [f] to elements with indices in
    [\[lo, hi)]. Bounds are clamped to the valid range. *)

val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val exists : ('a -> bool) -> 'a t -> bool

val lower_bound : 'a t -> key:('a -> int) -> int -> int
(** [lower_bound v ~key k] is the smallest index [i] such that
    [key (get v i) >= k], assuming [key] is non-decreasing over [v].
    Returns [length v] if no such index exists. *)
