lib/delta/time.mli: Format
