lib/delta/time.ml: Array Format Int Stdlib
