lib/delta/delta.mli: Format Roll_relation Time
