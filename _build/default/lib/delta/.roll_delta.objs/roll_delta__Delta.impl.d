lib/delta/delta.ml: Array Format Hashtbl Int List Relation Roll_relation Roll_util Schema Time Tuple
