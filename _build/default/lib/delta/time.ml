type t = int

let origin = 0

let compare = Int.compare

let equal = Int.equal

let min = Stdlib.min

let max = Stdlib.max

let pp = Format.pp_print_int

let to_string = string_of_int

module Vector = struct
  type time = t

  type t = time array

  let const n t = Array.make n t

  let pp ppf v =
    Format.fprintf ppf "[%a]"
      (Format.pp_print_seq
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         Format.pp_print_int)
      (Array.to_seq v)
end
