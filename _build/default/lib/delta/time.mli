(** Logical time.

    Internally, "time" is a commit sequence number (CSN): the position of a
    transaction's commit in the serialization order, exactly as the
    prototype in Section 5 of the paper uses DPropR commit sequence numbers.
    Wall-clock timestamps are kept separately in the unit-of-work table (see
    {!Roll_capture.Uow}) and mapped to CSNs when a point-in-time refresh is
    requested in wall time. *)

type t = int

val origin : t
(** [t_0], the creation time of all base tables. No transaction commits at
    or before [origin]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Vector timestamps: one time per source relation of a propagation query,
    written [τ] in the paper. *)
module Vector : sig
  type time = t

  type t = time array

  val const : int -> time -> t
  (** [const n t] is [\[t; ...; t\]] of length [n]. *)

  val pp : Format.formatter -> t -> unit
end
