open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module Database = Roll_storage.Database
module Table = Roll_storage.Table
module Capture = Roll_capture.Capture
module Vec = Roll_util.Vec

let log_src = Logs.Src.create "roll.executor" ~doc:"propagation-query execution"

module Log = (val Logs.src_log log_src)

(* Timestamp sentinel for rows that carry no delta timestamp (base rows). *)
let no_ts = max_int

type row = { tuple : Tuple.t; count : int; ts : int }

(* Inputs are lazy: a base table that ends up being probed through a
   secondary index is never materialized, and its row footprint is what the
   probes actually touched. *)
type input = {
  rows : row array Lazy.t;
  size : int;
  resource : string;
  is_delta : bool;
  table : Table.t option;
  mutable touched : int;
}

let force_rows (inp : input) =
  let rows = Lazy.force inp.rows in
  inp.touched <- max inp.touched (Array.length rows);
  rows

let input_of_term (ctx : Ctx.t) i = function
  | Pquery.Base ->
      let table_name = View.source_table ctx.view i in
      let table = Database.table ctx.db table_name in
      let relation = Table.contents table in
      let rows =
        lazy
          (let acc = Vec.create () in
           Relation.iter
             (fun tuple count -> Vec.push acc { tuple; count; ts = no_ts })
             relation;
           Array.of_list (Vec.to_list acc))
      in
      {
        rows;
        size = Relation.distinct_count relation;
        resource = table_name;
        is_delta = false;
        table = Some table;
        touched = 0;
      }
  | Pquery.Win { lo; hi } ->
      if lo > hi then invalid_arg "Executor: empty window bounds reversed";
      if hi > Capture.hwm ctx.capture then
        invalid_arg
          (Printf.sprintf
             "Executor: window (%d,%d] beyond capture high-water mark %d" lo hi
             (Capture.hwm ctx.capture));
      let table = View.source_table ctx.view i in
      let delta = Capture.delta ctx.capture ~table in
      let acc = Vec.create () in
      Delta.window_iter delta ~lo ~hi (fun (r : Delta.row) ->
          Vec.push acc { tuple = r.tuple; count = r.count; ts = r.ts });
      let rows = Array.of_list (Vec.to_list acc) in
      {
        rows = Lazy.from_val rows;
        size = Array.length rows;
        resource = "\xce\x94" ^ table;
        is_delta = true;
        table = None;
        touched = Array.length rows;
      }

(* Greedy join order: smallest input first (delta windows are usually tiny),
   then prefer sources connected to the bound set by an equi-join atom. *)
let plan (pred : Predicate.t) (inputs : input array) =
  let n = Array.length inputs in
  let size i = inputs.(i).size in
  let remaining = ref (List.init n (fun i -> i)) in
  let bound = Array.make n false in
  let connected i =
    List.exists
      (fun atom ->
        match atom with
        | Predicate.Join (a, b) ->
            (a.source = i && b.source <> i && bound.(b.source))
            || (b.source = i && a.source <> i && bound.(a.source))
        | Predicate.Cmp _ -> false)
      pred
  in
  let better i best =
    match best with
    | None -> true
    | Some j ->
        let si = size i and sj = size j in
        si < sj
        || (si = sj && inputs.(i).is_delta && not inputs.(j).is_delta)
        || (si = sj && inputs.(i).is_delta = inputs.(j).is_delta && i < j)
  in
  let pick want_connected =
    List.fold_left
      (fun best i ->
        if want_connected && not (connected i) then best
        else if better i best then Some i
        else best)
      None !remaining
  in
  let order = ref [] in
  for step = 0 to n - 1 do
    let choice =
      if step = 0 then pick false
      else match pick true with Some i -> Some i | None -> pick false
    in
    match choice with
    | Some i ->
        bound.(i) <- true;
        remaining := List.filter (fun j -> j <> i) !remaining;
        order := i :: !order
    | None -> assert false
  done;
  List.rev !order

(* Atoms are applied at the step that binds their last source. *)
let atoms_for pred ~bound_after ~just_bound =
  List.filter
    (fun atom ->
      let sources = Predicate.sources_of_atom atom in
      List.mem just_bound sources
      && List.for_all (fun s -> bound_after.(s)) sources)
    pred

(* Equi-join atoms usable as hash keys for the step binding [s]: one side on
   [s], other side already bound. Sorted by the [s]-side column so the key
   layout matches the canonical index column order. *)
let equi_pairs pred ~bound ~s =
  List.filter_map
    (fun atom ->
      match atom with
      | Predicate.Join (a, b) when a.source = s && b.source <> s && bound.(b.source)
        -> Some (b, a.column)
      | Predicate.Join (a, b) when b.source = s && a.source <> s && bound.(a.source)
        -> Some (a, b.column)
      | _ -> None)
    pred
  |> List.sort (fun (_, c1) (_, c2) -> Int.compare c1 c2)

(* An index is usable when it covers exactly the probed columns and those
   are distinct (duplicated probe columns fall back to hashing). *)
let usable_index (inp : input) pairs =
  match inp.table with
  | None -> None
  | Some table ->
      let columns = List.map snd pairs in
      let rec distinct = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) -> a <> b && distinct rest
      in
      if pairs <> [] && distinct columns && Table.has_index table ~columns then
        Some (table, columns)
      else None

module Key = struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end

module KeyTbl = Hashtbl.Make (Key)

let key_of_values values =
  if Array.exists (fun v -> v = Value.Null) values then None else Some values

type partial = { bindings : Tuple.t array; count : int; ts : int }

type access = Scan | Hash_join | Index_probe | Nested_loop

(* Combine row timestamps under the configured rule; [no_ts] marks base
   rows, which carry no timestamp and are neutral. *)
let combine_ts rule a b =
  match rule with
  | `Min -> min a b
  | `Max -> if a = no_ts then b else if b = no_ts then a else max a b

let evaluate_plan rule view pred (inputs : input array) order =
  let n = Array.length inputs in
  match order with
  | [] -> invalid_arg "Executor: empty plan"
  | first :: rest ->
      let bound = Array.make n false in
      bound.(first) <- true;
      let init_atoms = atoms_for pred ~bound_after:bound ~just_bound:first in
      let partials = ref (Vec.create ()) in
      Array.iter
        (fun (r : row) ->
          let bindings = Array.make n [||] in
          bindings.(first) <- r.tuple;
          if List.for_all (Predicate.eval_atom bindings) init_atoms then
            Vec.push !partials { bindings; count = r.count; ts = r.ts })
        (force_rows inputs.(first));
      let step s =
        let pairs = equi_pairs pred ~bound ~s in
        bound.(s) <- true;
        let atoms = atoms_for pred ~bound_after:bound ~just_bound:s in
        (* Atoms already used as hash-key pairs must not be re-checked; the
           remaining atoms include within-source filters and theta atoms. *)
        let atoms =
          List.filter
            (fun atom ->
              not
                (List.exists
                   (fun (bcol, scol) ->
                     match atom with
                     | Predicate.Join (a, b) ->
                         (a = bcol && b = Predicate.col s scol)
                         || (b = bcol && a = Predicate.col s scol)
                     | Predicate.Cmp _ -> false)
                   pairs))
            atoms
        in
        let next = Vec.create () in
        let emit (p : partial) (r : row) =
          let bindings = Array.copy p.bindings in
          bindings.(s) <- r.tuple;
          if List.for_all (Predicate.eval_atom bindings) atoms then
            Vec.push next
              { bindings; count = p.count * r.count; ts = combine_ts rule p.ts r.ts }
        in
        let probe_key (p : partial) =
          key_of_values
            (Array.of_list
               (List.map
                  (fun ((bcol : Predicate.col), _) ->
                    Tuple.get p.bindings.(bcol.source) bcol.column)
                  pairs))
        in
        (match usable_index inputs.(s) pairs with
        | Some (table, columns) ->
            (* Probe the table's B+-tree index: no materialization, and the
               footprint counts only the copies actually fetched. *)
            Vec.iter
              (fun (p : partial) ->
                match probe_key p with
                | None -> ()
                | Some key ->
                    List.iter
                      (fun tuple ->
                        inputs.(s).touched <- inputs.(s).touched + 1;
                        emit p { tuple; count = 1; ts = no_ts })
                      (Table.index_probe table ~columns key))
              !partials
        | None ->
            let rows = force_rows inputs.(s) in
            if pairs = [] then
              Vec.iter (fun p -> Array.iter (fun r -> emit p r) rows) !partials
            else begin
              let index = KeyTbl.create (Array.length rows) in
              Array.iter
                (fun (r : row) ->
                  let key_values =
                    Array.of_list (List.map (fun (_, c) -> Tuple.get r.tuple c) pairs)
                  in
                  match key_of_values key_values with
                  | None -> ()
                  | Some key ->
                      KeyTbl.replace index key
                        (r :: (try KeyTbl.find index key with Not_found -> [])))
                rows;
              Vec.iter
                (fun (p : partial) ->
                  match probe_key p with
                  | None -> ()
                  | Some key -> (
                      match KeyTbl.find_opt index key with
                      | None -> ()
                      | Some rows -> List.iter (fun r -> emit p r) rows))
                !partials
            end);
        partials := next
      in
      List.iter step rest;
      let out = ref [] in
      Vec.iter
        (fun (p : partial) ->
          let tuple = View.project_bindings view p.bindings in
          let ts = if p.ts = no_ts then Time.origin else p.ts in
          out := (tuple, p.count, ts) :: !out)
        !partials;
      List.rev !out

let evaluate (ctx : Ctx.t) (q : Pquery.t) =
  let view = ctx.view in
  if Array.length q <> View.n_sources view then
    invalid_arg "Executor.evaluate: query arity mismatch";
  let inputs = Array.mapi (fun i term -> input_of_term ctx i term) q in
  let order = plan (View.predicate view) inputs in
  let rows =
    evaluate_plan ctx.Ctx.timestamp_rule view (View.predicate view) inputs order
  in
  let reads =
    Array.to_list (Array.map (fun inp -> (inp.resource, inp.touched)) inputs)
  in
  (rows, reads)

(* The access path each plan step would use, for explain output. *)
let access_of pred (inputs : input array) order =
  let bound = Array.make (Array.length inputs) false in
  List.mapi
    (fun step s ->
      let access =
        if step = 0 then (Scan, [])
        else
          let pairs = equi_pairs pred ~bound ~s in
          if pairs = [] then (Nested_loop, [])
          else
            match usable_index inputs.(s) pairs with
            | Some (_, columns) -> (Index_probe, columns)
            | None -> (Hash_join, List.map snd pairs)
      in
      bound.(s) <- true;
      (s, access))
    order

let explain (ctx : Ctx.t) (q : Pquery.t) =
  let view = ctx.view in
  let pred = View.predicate view in
  let inputs = Array.mapi (fun i term -> input_of_term ctx i term) q in
  let order = plan pred inputs in
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Pquery.describe view q);
  Buffer.add_char buf '\n';
  List.iter
    (fun (s, (access, columns)) ->
      let inp = inputs.(s) in
      let cols = String.concat "," (List.map string_of_int columns) in
      let line =
        match access with
        | Scan -> Printf.sprintf "  scan %s (%d rows)" inp.resource inp.size
        | Nested_loop ->
            Printf.sprintf "  nested-loop %s (%d rows)" inp.resource inp.size
        | Hash_join ->
            Printf.sprintf "  hash-join %s (%d rows) on columns [%s]"
              inp.resource inp.size cols
        | Index_probe ->
            Printf.sprintf "  index-probe %s on columns [%s]" inp.resource cols
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (access_of pred inputs order);
  Buffer.contents buf

let execute (ctx : Ctx.t) ~sign (q : Pquery.t) =
  ctx.on_execute ();
  if ctx.auto_capture then Capture.advance ctx.capture;
  let rows, reads = evaluate ctx q in
  let description = Pquery.describe ctx.view q in
  let tag = (if sign < 0 then "-" else "+") ^ description in
  List.iter
    (fun (tuple, count, ts) ->
      ctx.on_emit ~description:tag tuple (sign * count) ts;
      Delta.append ctx.out tuple ~count:(sign * count) ~ts)
    rows;
  let t_exec = Database.commit_marker ctx.db ~tag in
  Log.debug (fun m ->
      m "executed %s at t=%d: %d rows emitted" tag t_exec (List.length rows));
  Stats.record_query ctx.stats
    { Stats.exec = t_exec; description = tag; reads; emitted = List.length rows };
  (match ctx.geometry with
  | None -> ()
  | Some g ->
      let spans =
        Array.map
          (function
            | Pquery.Base -> Geometry.Full_upto t_exec
            | Pquery.Win { lo; hi } -> Geometry.Window (lo, hi))
          q
      in
      Geometry.record ~label:tag g ~sign spans);
  t_exec

let materialize (ctx : Ctx.t) =
  if ctx.auto_capture then Capture.advance ctx.capture;
  let q = Pquery.all_base (View.n_sources ctx.view) in
  let rows, _reads = evaluate ctx q in
  let relation = Relation.create (View.output_schema ctx.view) in
  List.iter (fun (tuple, count, _) -> Relation.add relation tuple count) rows;
  let t_exec = Database.commit_marker ctx.db ~tag:("materialize " ^ View.name ctx.view) in
  (relation, t_exec)
