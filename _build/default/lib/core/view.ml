open Roll_relation
open Roll_storage

type t = {
  name : string;
  source_tables : string array;
  aliases : string array;
  schemas : Schema.t array;
  predicate : Predicate.t;
  projection : (string * Predicate.operand) list;
  output_schema : Schema.t;
}

let binder db sources alias column =
  let rec find i = function
    | [] -> invalid_arg ("View.binder: unknown alias " ^ alias)
    | (table, a) :: rest ->
        if String.equal a alias then (i, table) else find (i + 1) rest
  in
  let source, table = find 0 sources in
  let schema = Table.schema (Database.table db table) in
  match Schema.find_index schema column with
  | Some c -> Predicate.col source c
  | None ->
      invalid_arg
        (Printf.sprintf "View.binder: no column %s in %s (alias %s)" column
           table alias)

let validate_col schemas (c : Predicate.col) =
  if c.source < 0 || c.source >= Array.length schemas then
    invalid_arg "View.create: column references unknown source";
  if c.column < 0 || c.column >= Schema.arity schemas.(c.source) then
    invalid_arg "View.create: column index out of range"

let validate_operand schemas operand =
  Predicate.fold_operands
    (fun () op ->
      match op with
      | Predicate.Col c -> validate_col schemas c
      | Predicate.Const _ | Predicate.Neg _ | Predicate.Add _
      | Predicate.Sub _ | Predicate.Mul _ | Predicate.Div _ -> ())
    () operand

let validate_atom schemas = function
  | Predicate.Join (a, b) ->
      validate_col schemas a;
      validate_col schemas b;
      let ta = (Schema.column schemas.(a.source) a.column).ty in
      let tb = (Schema.column schemas.(b.source) b.column).ty in
      if ta <> tb then
        invalid_arg "View.create: equi-join between differently-typed columns"
  | Predicate.Cmp (_, x, y) ->
      validate_operand schemas x;
      validate_operand schemas y

let create_select db ~name ~sources ~predicate ~select =
  if sources = [] then invalid_arg "View.create: no sources";
  if select = [] then invalid_arg "View.create: empty projection";
  let source_tables = Array.of_list (List.map fst sources) in
  let aliases = Array.of_list (List.map snd sources) in
  let schemas =
    Array.map (fun tbl -> Table.schema (Database.table db tbl)) source_tables
  in
  List.iter (validate_atom schemas) predicate;
  List.iter (fun (_, operand) -> validate_operand schemas operand) select;
  let col_type (c : Predicate.col) = (Schema.column schemas.(c.source) c.column).ty in
  let out_col (col_name, operand) =
    match Predicate.infer_type col_type operand with
    | Ok ty -> { Schema.name = col_name; ty }
    | Error msg ->
        invalid_arg (Printf.sprintf "View.create: column %s: %s" col_name msg)
  in
  let output_schema = Schema.make (List.map out_col select) in
  { name; source_tables; aliases; schemas; predicate; projection = select;
    output_schema }

let create db ~name ~sources ~predicate ~project =
  let aliases = Array.of_list (List.map snd sources) in
  let schemas =
    Array.map
      (fun (tbl, _) -> Table.schema (Database.table db tbl))
      (Array.of_list sources)
  in
  let select =
    List.map
      (fun (c : Predicate.col) ->
        if c.source < 0 || c.source >= Array.length schemas then
          invalid_arg "View.create: column references unknown source";
        if c.column < 0 || c.column >= Schema.arity schemas.(c.source) then
          invalid_arg "View.create: column index out of range";
        let col = Schema.column schemas.(c.source) c.column in
        (aliases.(c.source) ^ "_" ^ col.Schema.name, Predicate.Col c))
      project
  in
  create_select db ~name ~sources ~predicate ~select

let name t = t.name

let n_sources t = Array.length t.source_tables

let source_table t i = t.source_tables.(i)

let alias t i = t.aliases.(i)

let source_schema t i = t.schemas.(i)

let predicate t = t.predicate

let projection t = t.projection

let output_schema t = t.output_schema

let project_bindings t bindings =
  Array.of_list
    (List.map
       (fun (_, operand) -> Predicate.eval_operand bindings operand)
       t.projection)

let pp ppf t =
  Format.fprintf ppf "@[<v>view %s:@, from %a@, where %a@]" t.name
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    (Array.to_seq t.source_tables)
    Predicate.pp t.predicate
