(** The maintenance controller: the prototype architecture of Figure 11.

    Ties together the database engine, the capture process, the propagate
    driver (either the uniform-interval [Propagate] process or
    [RollingPropagate]) and the apply driver, and keeps the control-table
    state: the view's materialization time and the view-delta high-water
    mark. Provides the user-facing refresh operations, including
    point-in-time refresh by logical time or by wall-clock time. *)

type algorithm =
  | Uniform of int  (** [Propagate] with this interval *)
  | Rolling of Rolling.policy
      (** [RollingPropagate] with per-relation intervals *)
  | Deferred of Rolling_deferred.policy
      (** the literal Figure 10 deferred-compensation process (two-way
          views only) *)
  | Adaptive of int
      (** rolling propagation with {!Autotune}-chosen per-relation
          intervals targeting this many delta rows per forward query *)

type t

val create :
  ?geometry:bool ->
  ?auto_index:bool ->
  Roll_storage.Database.t ->
  Roll_capture.Capture.t ->
  View.t ->
  algorithm:algorithm ->
  t
(** Materializes the view from current state and starts maintenance at that
    time. The capture process must have all source tables attached. With
    [auto_index] (default false), a single-column secondary index is created
    on every base-table column the view equi-joins on, so propagation
    queries probe instead of scanning
    (see {!Roll_storage.Table.create_index}). *)

val ctx : t -> Ctx.t

val view : t -> View.t

val contents : t -> Roll_relation.Relation.t
(** Current materialized contents. *)

val as_of : t -> Roll_delta.Time.t
(** Materialization time of the stored view. *)

val hwm : t -> Roll_delta.Time.t
(** View-delta high-water mark: latest time the view can be rolled to right
    now. *)

val propagate_step : t -> bool
(** One propagation transaction (plus its compensations). [false] when the
    propagation process is fully caught up. *)

val propagate_until : t -> Roll_delta.Time.t -> unit
(** Run propagation steps until [hwm] reaches the target (which must have
    elapsed). *)

val refresh_to : t -> Roll_delta.Time.t -> unit
(** Point-in-time refresh: ensure the delta covers the target (propagating
    if needed), then roll the materialized view to exactly that time. *)

val refresh_to_wall : t -> float -> Roll_delta.Time.t
(** Point-in-time refresh to a wall-clock instant: resolves the last
    relevant commit at or before that wall time through the unit-of-work
    table and refreshes to it. Returns the resolved logical time. *)

val refresh_latest : t -> Roll_delta.Time.t
(** Refresh to the database's current time. *)

val gc : t -> int
(** Prune applied view-delta rows; returns rows removed. *)

val stats : t -> Stats.t
