(** Views with union (Section 2: "rolling propagation … can be extended
    easily to accommodate views involving union").

    A union view is the multiset union of several SPJ blocks with identical
    output schemas. Each block gets its own rolling propagation process and
    its own delta; the union's materialization applies all block windows,
    and the union's high-water mark is the minimum over blocks. Because
    counts add, no coordination between blocks is needed — the union of
    timed delta tables is a timed delta table for the union view (Lemma 4.2
    lifts pointwise). *)

type t

val create :
  Roll_storage.Database.t ->
  Roll_capture.Capture.t ->
  views:View.t list ->
  policies:Rolling.policy list ->
  t_initial:Roll_delta.Time.t ->
  t
(** @raise Invalid_argument if the blocks' output schemas differ or the
    lists' lengths mismatch. *)

val n_blocks : t -> int

val block_ctx : t -> int -> Ctx.t

val hwm : t -> Roll_delta.Time.t

val propagate_until : t -> Roll_delta.Time.t -> unit

val contents : t -> Roll_relation.Relation.t

val as_of : t -> Roll_delta.Time.t

val roll_to : t -> Roll_delta.Time.t -> unit
(** @raise Invalid_argument if the target exceeds [hwm]. *)
