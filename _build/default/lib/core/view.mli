(** Select-project-join view definitions.

    A view is π(σ(R¹ ⋈ R² ⋈ … ⋈ Rⁿ)): an ordered list of source tables
    (order matters to the propagation algorithms — forward queries for Rⁱ
    compensate against lower-numbered relations), a conjunctive predicate,
    and a projection. Duplicates are preserved through counts, so the
    projection need not keep a key. *)

type t

val binder :
  Roll_storage.Database.t ->
  (string * string) list ->
  string ->
  string ->
  Roll_relation.Predicate.col
(** [binder db sources alias column] resolves ["o" "okey"] style references
    to predicate columns against the source list (pairs of table name and
    alias) before the view exists. @raise Invalid_argument on unknown alias
    or column. *)

val create :
  Roll_storage.Database.t ->
  name:string ->
  sources:(string * string) list ->
  predicate:Roll_relation.Predicate.t ->
  project:Roll_relation.Predicate.col list ->
  t
(** [create db ~name ~sources ~predicate ~project] validates the definition
    against the database's schemas: all column references in range,
    equi-joined columns of equal type, non-empty projection and sources.
    [sources] pairs are (table name, alias). Output columns are named
    ["alias_column"]. *)

val create_select :
  Roll_storage.Database.t ->
  name:string ->
  sources:(string * string) list ->
  predicate:Roll_relation.Predicate.t ->
  select:(string * Roll_relation.Predicate.operand) list ->
  t
(** Generalized projection: each output column is a named arithmetic
    expression over the sources (computed columns). Expression types are
    inferred and checked at creation. *)

val name : t -> string

val n_sources : t -> int

val source_table : t -> int -> string

val alias : t -> int -> string

val source_schema : t -> int -> Roll_relation.Schema.t

val predicate : t -> Roll_relation.Predicate.t

val projection : t -> (string * Roll_relation.Predicate.operand) list
(** Output columns: name and defining expression (a plain column reference
    for views built with [create]). *)

val output_schema : t -> Roll_relation.Schema.t

val project_bindings : t -> Roll_relation.Tuple.t array -> Roll_relation.Tuple.t
(** Apply the projection to one tuple per source. *)

val pp : Format.formatter -> t -> unit
