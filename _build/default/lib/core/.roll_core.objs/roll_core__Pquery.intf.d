lib/core/pquery.mli: Roll_delta View
