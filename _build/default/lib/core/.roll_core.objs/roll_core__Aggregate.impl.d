lib/core/aggregate.ml: Array Ctx Hashtbl List Map Printf Relation Roll_delta Roll_relation Schema Tuple Value View
