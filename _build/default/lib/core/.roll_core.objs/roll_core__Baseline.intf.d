lib/core/baseline.mli: Roll_delta Roll_relation Roll_storage View
