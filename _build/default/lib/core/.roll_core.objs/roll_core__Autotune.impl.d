lib/core/autotune.ml: Ctx Roll_capture Roll_delta Roll_storage View
