lib/core/view.ml: Array Database Format List Predicate Printf Roll_relation Roll_storage Schema String Table
