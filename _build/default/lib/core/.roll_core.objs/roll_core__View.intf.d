lib/core/view.mli: Format Roll_relation Roll_storage
