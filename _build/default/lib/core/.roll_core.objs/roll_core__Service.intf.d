lib/core/service.mli: Controller Roll_capture Roll_delta Roll_storage View
