lib/core/checkpoint.ml: Apply Array Buffer Ctx Fun Printf Relation Roll_delta Roll_relation Roll_storage Rolling Scanf Schema String View
