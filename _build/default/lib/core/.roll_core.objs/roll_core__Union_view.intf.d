lib/core/union_view.mli: Ctx Roll_capture Roll_delta Roll_relation Roll_storage Rolling View
