lib/core/rolling_deferred.mli: Ctx Roll_delta
