lib/core/geometry.mli: Roll_delta
