lib/core/propagate.ml: Compute_delta Ctx Roll_delta Roll_storage
