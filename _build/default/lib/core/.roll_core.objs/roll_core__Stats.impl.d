lib/core/stats.ml: Format List Roll_delta Roll_util
