lib/core/rolling.mli: Ctx Roll_delta
