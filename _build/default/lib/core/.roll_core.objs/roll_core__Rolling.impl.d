lib/core/rolling.ml: Array Compute_delta Ctx Executor Geometry Pquery Roll_capture Roll_delta Roll_storage View
