lib/core/apply.ml: Ctx Executor Printf Relation Roll_delta Roll_relation View
