lib/core/geometry.ml: Array Buffer Char Format Hashtbl Int List Roll_delta Roll_util
