lib/core/compute_delta.ml: Array Ctx Executor Geometry Pquery Roll_capture Roll_delta Roll_storage Stats View
