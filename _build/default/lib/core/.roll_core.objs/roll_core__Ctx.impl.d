lib/core/ctx.ml: Capture Database Geometry List Roll_capture Roll_delta Roll_relation Roll_storage Stats View
