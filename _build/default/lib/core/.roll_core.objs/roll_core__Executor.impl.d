lib/core/executor.ml: Array Buffer Ctx Geometry Hashtbl Int Lazy List Logs Pquery Predicate Printf Relation Roll_capture Roll_delta Roll_relation Roll_storage Roll_util Stats String Tuple Value View
