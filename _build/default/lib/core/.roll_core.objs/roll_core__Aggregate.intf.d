lib/core/aggregate.mli: Ctx Roll_delta Roll_relation
