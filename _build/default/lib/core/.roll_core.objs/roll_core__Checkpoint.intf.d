lib/core/checkpoint.mli: Apply Ctx Roll_capture Roll_delta Roll_storage Rolling View
