lib/core/union_view.ml: Array Ctx List Relation Roll_delta Roll_relation Rolling Schema View
