lib/core/autotune.mli: Ctx Rolling
