lib/core/oracle.ml: Array Format Predicate Relation Roll_delta Roll_relation Roll_storage View
