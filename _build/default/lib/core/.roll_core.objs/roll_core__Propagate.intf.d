lib/core/propagate.mli: Ctx Roll_delta
