lib/core/executor.mli: Ctx Pquery Roll_delta Roll_relation
