lib/core/pquery.ml: Array Printf Roll_delta String View
