lib/core/rolling_deferred.ml: Array Compute_delta Ctx Executor List Pquery Roll_capture Roll_delta Roll_storage Stdlib View
