lib/core/baseline.ml: Array List Oracle Relation Roll_relation Roll_storage View
