lib/core/compute_delta.mli: Ctx Pquery Roll_delta
