lib/core/ctx.mli: Geometry Roll_capture Roll_delta Roll_relation Roll_storage Stats View
