lib/core/service.ml: Controller Ctx List Roll_capture Roll_delta Roll_storage String View
