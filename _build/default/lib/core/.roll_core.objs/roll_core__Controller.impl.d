lib/core/controller.ml: Apply Autotune Ctx Geometry List Logs Propagate Roll_capture Roll_delta Roll_relation Roll_storage Rolling Rolling_deferred View
