lib/core/controller.mli: Ctx Roll_capture Roll_delta Roll_relation Roll_storage Rolling Rolling_deferred Stats View
