lib/core/apply.mli: Ctx Roll_delta Roll_relation
