lib/core/stats.mli: Format Roll_delta
