type term = Base | Win of { lo : Roll_delta.Time.t; hi : Roll_delta.Time.t }

type t = term array

let all_base n = Array.make n Base

let replace q i term =
  let q' = Array.copy q in
  q'.(i) <- term;
  q'

let has_base q = Array.exists (fun t -> t = Base) q

let n_deltas q =
  Array.fold_left (fun acc t -> match t with Base -> acc | Win _ -> acc + 1) 0 q

let is_forward q = n_deltas q = 1

let describe view q =
  let part i = function
    | Base -> View.alias view i
    | Win { lo; hi } -> Printf.sprintf "d%s(%d,%d]" (View.alias view i) lo hi
  in
  String.concat " . " (Array.to_list (Array.mapi part q))
