(** Aggregate views via summary-delta tables (Sections 2 and 6, citing
    Mumick et al.'s summary-delta method).

    A group-by COUNT/SUM/MIN/MAX view over an SPJ view is maintained
    directly from the SPJ view's timestamped delta: applying a delta window
    adds each row's count to its group's COUNT and count×value to its SUMs,
    removing groups whose COUNT reaches zero. MIN and MAX keep a per-group
    value multiset, so deletions maintain them exactly (no base re-scan).
    Because the windows are the same timestamped windows the apply process
    uses, aggregate views inherit point-in-time refresh for free. AVG is
    derived as SUM/COUNT. *)

type spec = {
  group_by : int list;  (** column indices of the SPJ view's output schema *)
  sums : int list;  (** columns to SUM (must be int-typed) *)
  mins : int list;  (** columns to MIN (any ordered type) *)
  maxs : int list;  (** columns to MAX *)
}

val simple : group_by:int list -> sums:int list -> spec
(** A spec with no MIN/MAX columns. *)

type t

val create : Ctx.t -> spec -> t_initial:Roll_delta.Time.t -> t
(** An aggregate over the context's view, correct-empty at [t_initial]
    (like {!Apply.create_empty}).
    @raise Invalid_argument on out-of-range columns or non-integer SUM
    columns. *)

val output_schema : t -> Roll_relation.Schema.t
(** Group-by columns, then ["count"], then ["sum_<col>"], ["min_<col>"] and
    ["max_<col>"] columns in spec order. *)

val contents : t -> Roll_relation.Relation.t
(** Current aggregate table: one tuple per group with positive count. *)

val as_of : t -> Roll_delta.Time.t

val roll_to : t -> hwm:Roll_delta.Time.t -> Roll_delta.Time.t -> unit
(** Point-in-time refresh of the aggregate, like {!Apply.roll_to}. *)

val group_count : t -> Roll_relation.Tuple.t -> int
(** COUNT for a group key (0 when absent). *)

val group_sum : t -> Roll_relation.Tuple.t -> int -> int
(** [group_sum t key i]: the i-th SUM (in [spec.sums] order) for a group. *)

val group_min : t -> Roll_relation.Tuple.t -> int -> Roll_relation.Value.t option
(** [group_min t key i]: the i-th MIN (in [spec.mins] order), [None] for an
    absent group. *)

val group_max : t -> Roll_relation.Tuple.t -> int -> Roll_relation.Value.t option

val average : t -> Roll_relation.Tuple.t -> int -> float option
(** SUM/COUNT, [None] for absent groups. *)
