(** Signed-box coverage of the propagation plane (Figures 6–9).

    Each base relation contributes a time axis. A propagation query maps to
    an n-dimensional signed box: a base term read at execution time [t]
    spans [\[t₀, t\]] on its axis (original content plus all changes up to
    [t]); a delta window (a, b] spans exactly that interval. The figures'
    argument — and the correctness intuition for compensation — is that the
    signed boxes sum to the indicator function of the processed region.

    This module records the box of every executed query and checks the
    claim exactly (by coordinate compression), independently of tuple-level
    results: for every cell whose coordinates all lie at or below the
    high-water mark and that involves at least one change (a non-origin
    coordinate), net coverage must be exactly 1; cells with a coordinate
    beyond the high-water mark are unconstrained; all-origin cells must have
    coverage 0. *)

type t

val create : n:int -> origin:Roll_delta.Time.t -> t
(** [origin] is the time the view delta starts at (t_initial): axis
    coordinates at or below [origin] are collapsed into the "original
    content" coordinate. *)

type span =
  | Full_upto of Roll_delta.Time.t
      (** a base term read at this time: covers the original-content
          coordinate plus all changes up to the time *)
  | Window of Roll_delta.Time.t * Roll_delta.Time.t
      (** a delta window (lo, hi]: changes only, never original content *)

val record : ?label:string -> t -> sign:int -> span array -> unit
(** [record t ~sign spans] adds one signed box, one span per axis; [label]
    is carried for diagnostics. *)

val n_boxes : t -> int

val coverage : t -> Roll_delta.Time.t array -> int
(** Net signed coverage of the cell at the given coordinates (each
    coordinate is interpreted as a change-commit time; [origin] means
    "original content"). *)

val boxes_covering : t -> Roll_delta.Time.t array -> (int * string) list
(** Signs and labels of the boxes covering a cell, in recording order. *)

val check : t -> hwm:Roll_delta.Time.t -> (unit, string) result
(** Exact check of the invariant above over all compressed cells. *)

val render_2d : t -> width:int -> upto:Roll_delta.Time.t -> string
(** ASCII rendering of net coverage for n = 2 (the Figures 7–9 pictures):
    one character per cell of a [width] × [width] grid over
    (origin, upto]², digits for coverage, ['.'] for 0. *)
