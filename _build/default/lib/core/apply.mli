(** The apply process: point-in-time refresh of the materialized view
    (Figures 2 and 3).

    Apply is completely decoupled from propagation: it selects view-delta
    tuples by timestamp and adds their counts into the stored view. Because
    every tuple is timestamped, the view can be rolled forward to {e any}
    time up to the view-delta high-water mark — not only to propagation
    interval boundaries — and rows beyond the high-water mark (partially
    computed changes) are ignored by construction. *)

type t

val create_empty : Ctx.t -> t_initial:Roll_delta.Time.t -> t
(** A view whose correct content at [t_initial] is empty (the usual case:
    maintenance set up before data arrives). *)

val create_materialized : Ctx.t -> t
(** Materialize the view from current base-table state; [as_of] becomes the
    materialization query's serialization time. *)

val create_restored :
  Ctx.t -> contents:Roll_relation.Relation.t -> as_of:Roll_delta.Time.t -> t
(** Adopt previously saved view contents known to be correct at [as_of] —
    used by {!Checkpoint.resume}. The relation is copied. *)

val contents : t -> Roll_relation.Relation.t
(** The stored view. Read-only to callers. *)

val as_of : t -> Roll_delta.Time.t
(** The view's current materialization time. *)

val roll_to : t -> hwm:Roll_delta.Time.t -> Roll_delta.Time.t -> unit
(** [roll_to t ~hwm target] rolls the view forward to [target] by applying
    view-delta tuples with timestamps in (as_of, target].
    @raise Invalid_argument if [target < as_of] or [target > hwm]. *)

val roll_back_to : t -> Roll_delta.Time.t -> unit
(** Extension beyond the paper: roll {e backwards} by applying the window
    (target, as_of] negated. Valid for any target not earlier than the time
    the delta starts at. *)

val view_at : t -> hwm:Roll_delta.Time.t -> Roll_delta.Time.t -> Roll_relation.Relation.t
(** [view_at t ~hwm time] is a snapshot of the view at any [time] between
    the delta's start and [hwm], computed on a copy — the stored view and
    [as_of] are untouched. This is the reader-side payoff of timestamped
    deltas: historical reads without blocking or rewinding the view. *)

val prune_applied : t -> int
(** Garbage-collect view-delta rows already applied (timestamp <= as_of),
    returning how many were removed. Only safe when no other consumer needs
    to roll from an earlier time. *)
