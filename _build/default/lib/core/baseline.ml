open Roll_relation
module History = Roll_storage.History

type cost = { queries : int; rows_read : int }

let delta_net history view i ~lo ~hi =
  let table = View.source_table view i in
  let changes = History.changes_between history ~table ~lo ~hi in
  let net = Relation.create (View.source_schema view i) in
  List.iter (fun (tuple, count, _ts) -> Relation.add net tuple count) changes;
  net

let rows_of relations =
  Array.fold_left (fun acc r -> acc + Relation.distinct_count r) 0 relations

let eq1 history view ~lo ~hi =
  let n = View.n_sources view in
  let out = Relation.create (View.output_schema view) in
  let cost = ref { queries = 0; rows_read = 0 } in
  let deltas = Array.init n (fun i -> delta_net history view i ~lo ~hi) in
  let post = Array.init n (fun i ->
      History.state_at history ~table:(View.source_table view i) hi)
  in
  (* One query per non-empty subset of sources, encoded by the bits of
     [mask]; sign alternates by subset parity (inclusion-exclusion). *)
  for mask = 1 to (1 lsl n) - 1 do
    let relations =
      Array.init n (fun i ->
          if mask land (1 lsl i) <> 0 then deltas.(i) else post.(i))
    in
    let bits = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then incr bits
    done;
    let sign = if !bits mod 2 = 1 then 1 else -1 in
    let result = Oracle.join_all view relations in
    Relation.iter (fun tuple c -> Relation.add out tuple (sign * c)) result;
    cost :=
      { queries = !cost.queries + 1; rows_read = !cost.rows_read + rows_of relations }
  done;
  (out, !cost)

let eq2 history view ~lo ~hi =
  let n = View.n_sources view in
  let out = Relation.create (View.output_schema view) in
  let cost = ref { queries = 0; rows_read = 0 } in
  let pre = Array.init n (fun i ->
      History.state_at history ~table:(View.source_table view i) lo)
  in
  let post = Array.init n (fun i ->
      History.state_at history ~table:(View.source_table view i) hi)
  in
  for i = 0 to n - 1 do
    let relations =
      Array.init n (fun j ->
          if j < i then pre.(j)
          else if j = i then delta_net history view i ~lo ~hi
          else post.(j))
    in
    let result = Oracle.join_all view relations in
    Relation.iter (fun tuple c -> Relation.add out tuple c) result;
    cost :=
      { queries = !cost.queries + 1; rows_read = !cost.rows_read + rows_of relations }
  done;
  (out, !cost)

let recompute_diff history view ~lo ~hi =
  let v_lo = Oracle.view_at history view lo in
  let v_hi = Oracle.view_at history view hi in
  let rows =
    Array.fold_left
      (fun acc i ->
        let table = View.source_table view i in
        acc
        + Relation.distinct_count (History.state_at history ~table lo)
        + Relation.distinct_count (History.state_at history ~table hi))
      0
      (Array.init (View.n_sources view) (fun i -> i))
  in
  (Relation.diff v_hi v_lo, { queries = 2; rows_read = rows })
