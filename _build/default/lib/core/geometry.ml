module Vec = Roll_util.Vec
module Time = Roll_delta.Time

type span = Full_upto of Time.t | Window of Time.t * Time.t

type box = { sign : int; spans : span array; label : string }

type t = { n : int; origin : Time.t; boxes : box Vec.t }

let create ~n ~origin = { n; origin; boxes = Vec.create () }

let record ?(label = "") t ~sign spans =
  if Array.length spans <> t.n then invalid_arg "Geometry.record: arity";
  Array.iter
    (function
      | Full_upto _ -> ()
      | Window (a, b) ->
          if b < a then invalid_arg "Geometry.record: reversed window")
    spans;
  Vec.push t.boxes { sign; spans; label }

let n_boxes t = Vec.length t.boxes

(* A cell coordinate [c] on axis [i]: the origin coordinate stands for
   original content, which only base terms cover; other coordinates are
   change-commit times covered by intervals. *)
let axis_covers t (box : box) i c =
  match box.spans.(i) with
  | Full_upto e -> c = t.origin || (t.origin < c && c <= e)
  | Window (a, b) -> c <> t.origin && a < c && c <= b

let box_covers t box coords =
  let rec loop i = i >= t.n || (axis_covers t box i coords.(i) && loop (i + 1)) in
  loop 0

let coverage t coords =
  if Array.length coords <> t.n then invalid_arg "Geometry.coverage: arity";
  Vec.fold_left
    (fun acc box -> if box_covers t box coords then acc + box.sign else acc)
    0 t.boxes

(* Representative coordinates per axis: the origin plus, for every interval
   endpoint e <= limit, the coordinates e and e+1 (cells are the intervals
   between consecutive endpoints; testing both sides of every boundary
   covers a representative of each distinct cell). *)
let axis_points t ~limit i =
  let set = Hashtbl.create 16 in
  Hashtbl.replace set t.origin ();
  let add e = if e > t.origin && e <= limit then Hashtbl.replace set e () in
  let endpoints = function
    | Full_upto e -> (t.origin, e)
    | Window (a, b) -> (a, b)
  in
  Vec.iter
    (fun box ->
      let a, b = endpoints box.spans.(i) in
      add a;
      add (a + 1);
      add b;
      add (b + 1))
    t.boxes;
  let points = Hashtbl.fold (fun k () acc -> k :: acc) set [] in
  Array.of_list (List.sort Int.compare points)

let check t ~hwm =
  if hwm <= t.origin then Ok ()
  else begin
    let axes = Array.init t.n (fun i -> axis_points t ~limit:hwm i) in
    let coords = Array.make t.n t.origin in
    let exception Failed of string in
    let rec walk i =
      if i = t.n then begin
        let all_origin = Array.for_all (fun c -> c = t.origin) coords in
        let cov = coverage t coords in
        let expected = if all_origin then 0 else 1 in
        if cov <> expected then
          raise
            (Failed
               (Format.asprintf "cell %a: coverage %d, expected %d"
                  Time.Vector.pp coords cov expected))
      end
      else
        Array.iter
          (fun p ->
            coords.(i) <- p;
            walk (i + 1))
          axes.(i)
    in
    match walk 0 with () -> Ok () | exception Failed msg -> Error msg
  end

let render_2d t ~width ~upto =
  if t.n <> 2 then invalid_arg "Geometry.render_2d: n <> 2";
  let span = upto - t.origin in
  let buf = Buffer.create ((width + 1) * (width + 1)) in
  (* Row 0 at the top is the latest R2 time, matching Figure 6's layout. *)
  for row = width - 1 downto 0 do
    for col = 0 to width - 1 do
      let c1 = t.origin + (span * col / width) + if col = 0 then 0 else 1 in
      let c2 = t.origin + (span * row / width) + if row = 0 then 0 else 1 in
      let c1 = min c1 upto and c2 = min c2 upto in
      let cov = coverage t [| c1; c2 |] in
      Buffer.add_char buf
        (if cov = 0 then '.'
         else if cov > 0 && cov < 10 then Char.chr (Char.code '0' + cov)
         else if cov < 0 && cov > -10 then Char.chr (Char.code 'a' - cov - 1)
         else '#')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let boxes_covering t coords =
  Vec.fold_left
    (fun acc box ->
      if box_covers t box coords then (box.sign, box.label) :: acc else acc)
    [] t.boxes
  |> List.rev
