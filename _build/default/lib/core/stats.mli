(** Execution statistics and per-transaction footprints.

    Counters drive the benches; footprints (which resources a propagation
    transaction read and how many rows) feed the contention simulator, so
    the lock-queueing model runs on measured rather than assumed transaction
    sizes. *)

type footprint = {
  exec : Roll_delta.Time.t;  (** serialization time of the query *)
  description : string;
  reads : (string * int) list;
      (** resource name ("R" for a base table, "ΔR" for its delta) and rows
          read from it *)
  emitted : int;  (** rows added to the view delta *)
}

type t

val create : unit -> t

val queries : t -> int

val rows_read : t -> int

val rows_emitted : t -> int

val compute_delta_calls : t -> int

val incr_compute_delta_calls : t -> unit

val record_query : t -> footprint -> unit

val footprints : t -> footprint list

val set_keep_footprints : t -> bool -> unit
(** Footprint retention is on by default; long benches can switch it off to
    bound memory. Counters are always maintained. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
