module Vec = Roll_util.Vec

type footprint = {
  exec : Roll_delta.Time.t;
  description : string;
  reads : (string * int) list;
  emitted : int;
}

type t = {
  mutable queries : int;
  mutable rows_read : int;
  mutable rows_emitted : int;
  mutable compute_delta_calls : int;
  mutable keep_footprints : bool;
  footprints : footprint Vec.t;
}

let create () =
  {
    queries = 0;
    rows_read = 0;
    rows_emitted = 0;
    compute_delta_calls = 0;
    keep_footprints = true;
    footprints = Vec.create ();
  }

let queries t = t.queries

let rows_read t = t.rows_read

let rows_emitted t = t.rows_emitted

let compute_delta_calls t = t.compute_delta_calls

let incr_compute_delta_calls t = t.compute_delta_calls <- t.compute_delta_calls + 1

let record_query t fp =
  t.queries <- t.queries + 1;
  t.rows_read <- t.rows_read + List.fold_left (fun acc (_, n) -> acc + n) 0 fp.reads;
  t.rows_emitted <- t.rows_emitted + fp.emitted;
  if t.keep_footprints then Vec.push t.footprints fp

let footprints t = Vec.to_list t.footprints

let set_keep_footprints t b = t.keep_footprints <- b

let reset t =
  t.queries <- 0;
  t.rows_read <- 0;
  t.rows_emitted <- 0;
  t.compute_delta_calls <- 0;
  Vec.clear t.footprints

let pp ppf t =
  Format.fprintf ppf "queries=%d rows_read=%d rows_emitted=%d compute_delta=%d"
    t.queries t.rows_read t.rows_emitted t.compute_delta_calls
