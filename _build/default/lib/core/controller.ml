module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module Uow = Roll_capture.Uow

let log_src = Logs.Src.create "roll.controller" ~doc:"view-maintenance controller"

module Log = (val Logs.src_log log_src)

type algorithm =
  | Uniform of int
  | Rolling of Rolling.policy
  | Deferred of Rolling_deferred.policy
  | Adaptive of int

type process =
  | P_uniform of Propagate.t * int
  | P_rolling of Rolling.t * Rolling.policy
  | P_deferred of Rolling_deferred.t * Rolling_deferred.policy

type t = { ctx : Ctx.t; apply : Apply.t; process : process }

let create ?(geometry = false) ?(auto_index = false) db capture view ~algorithm =
  if auto_index then
    List.iter
      (fun atom ->
        match atom with
        | Roll_relation.Predicate.Join (a, b) ->
            List.iter
              (fun (c : Roll_relation.Predicate.col) ->
                Roll_storage.Table.create_index
                  (Database.table db (View.source_table view c.source))
                  ~columns:[ c.column ])
              [ a; b ]
        | Roll_relation.Predicate.Cmp _ -> ())
      (View.predicate view);
  let ctx = Ctx.create db capture view in
  let apply = Apply.create_materialized ctx in
  let t_initial = Apply.as_of apply in
  (* The geometry trace's origin must match the maintenance start time,
     which is only known after materialization. *)
  if geometry then
    ctx.Ctx.geometry <-
      Some (Geometry.create ~n:(View.n_sources view) ~origin:t_initial);
  let process =
    match algorithm with
    | Uniform interval -> P_uniform (Propagate.create ctx ~t_initial, interval)
    | Rolling policy -> P_rolling (Rolling.create ctx ~t_initial, policy)
    | Deferred policy ->
        P_deferred (Rolling_deferred.create ctx ~t_initial, policy)
    | Adaptive target_rows ->
        let tuner = Autotune.create ~target_rows ctx in
        P_rolling (Rolling.create ctx ~t_initial, Autotune.policy tuner)
  in
  { ctx; apply; process }

let ctx t = t.ctx

let view t = t.ctx.Ctx.view

let contents t = Apply.contents t.apply

let as_of t = Apply.as_of t.apply

let hwm t =
  match t.process with
  | P_uniform (p, _) -> Propagate.hwm p
  | P_rolling (r, _) -> Rolling.hwm r
  | P_deferred (r, _) -> Rolling_deferred.hwm r

let propagate_step t =
  match t.process with
  | P_uniform (p, interval) -> (
      match Propagate.step p ~interval with `Advanced _ -> true | `Idle -> false)
  | P_rolling (r, policy) -> (
      match Rolling.step r ~policy with `Advanced _ -> true | `Idle -> false)
  | P_deferred (r, policy) -> (
      match Rolling_deferred.step r ~policy with
      | `Advanced _ -> true
      | `Idle -> false)

let propagate_until t target =
  match t.process with
  | P_uniform (p, interval) -> Propagate.run_until p ~target ~interval
  | P_rolling (r, policy) -> Rolling.run_until r ~target ~policy
  | P_deferred (r, policy) -> Rolling_deferred.run_until r ~target ~policy

let refresh_to t target =
  if target > hwm t then propagate_until t target;
  Apply.roll_to t.apply ~hwm:(hwm t) target;
  Log.info (fun m ->
      m "view %s refreshed to t=%d (hwm=%d)" (View.name t.ctx.Ctx.view) target
        (hwm t))

let refresh_to_wall t wall =
  Capture.advance t.ctx.Ctx.capture;
  let target = Uow.csn_at_wall (Capture.uow t.ctx.Ctx.capture) wall in
  let target = Time.max target (as_of t) in
  refresh_to t target;
  target

let refresh_latest t =
  let target = Database.now t.ctx.Ctx.db in
  refresh_to t target;
  target

let gc t = Apply.prune_applied t.apply

let stats t = t.ctx.Ctx.stats
