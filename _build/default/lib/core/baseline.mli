(** Synchronous view-delta baselines (Section 3.1).

    Both formulas compute the net view delta V_{a,b} from base-table
    snapshots, so they can only run synchronously — at a time when the
    required states exist. Here they read snapshots from the temporal
    {!Roll_storage.History}, which is exactly the capability a real system
    lacks (and the reason the paper's asynchronous algorithm exists); they
    serve as correctness cross-checks and cost baselines.

    - {!eq1}: 2ⁿ−1 queries, one per non-empty subset S of sources, with
      delta windows at S and post-state snapshots R_b elsewhere, signed
      (−1)^(|S|+1) (inclusion-exclusion). All queries except the all-delta
      one are realizable only at t_b.
    - {!eq2}: n queries; query i uses pre-state snapshots left of the delta
      and post-state snapshots right of it. Fewer queries, but the mixed
      states make all but the edge queries unrealizable at any single time
      (Section 2) — hence "useful starting point" only.

    Both return the same net delta (a property the tests check against each
    other and against recomputation). *)

type cost = { queries : int; rows_read : int }

val eq1 :
  Roll_storage.History.t ->
  View.t ->
  lo:Roll_delta.Time.t ->
  hi:Roll_delta.Time.t ->
  Roll_relation.Relation.t * cost

val eq2 :
  Roll_storage.History.t ->
  View.t ->
  lo:Roll_delta.Time.t ->
  hi:Roll_delta.Time.t ->
  Roll_relation.Relation.t * cost

val recompute_diff :
  Roll_storage.History.t ->
  View.t ->
  lo:Roll_delta.Time.t ->
  hi:Roll_delta.Time.t ->
  Roll_relation.Relation.t * cost
(** Full, non-incremental refresh: V_hi − V_lo, computed from scratch. *)
