(* Multi-view maintenance service: several views over one capture, status
   reporting, pause/resume (failure injection), budgeted stepping. *)

open Test_support.Helpers
open Roll_relation
module C = Roll_core

(* Two different views over the two_table scenario. *)
let service_scenario () =
  let s = two_table () in
  let b = C.View.binder s.db [ ("r", "r"); ("s", "s") ] in
  let joined =
    C.View.create s.db ~name:"joined"
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:[ Predicate.join (b "r" "k") (b "s" "k") ]
      ~project:[ b "r" "k"; b "r" "v"; b "s" "w" ]
  in
  let b1 = C.View.binder s.db [ ("r", "r") ] in
  let filtered =
    C.View.create s.db ~name:"filtered" ~sources:[ ("r", "r") ]
      ~predicate:
        [ Predicate.cmp Predicate.Ge (Predicate.Col (b1 "r" "v")) (Predicate.Const (Value.Int 2)) ]
      ~project:[ b1 "r" "k"; b1 "r" "v" ]
  in
  let service = C.Service.create s.db s.capture in
  let _ =
    C.Service.register service ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 4)) joined
  in
  let _ = C.Service.register service ~algorithm:(C.Controller.Uniform 6) filtered in
  (s, service)

let test_register_and_names () =
  let _, service = service_scenario () in
  Alcotest.(check (list string)) "names in order" [ "joined"; "filtered" ]
    (C.Service.names service)

let test_duplicate_rejected () =
  let s, service = service_scenario () in
  let b = C.View.binder s.db [ ("r", "r") ] in
  let dup =
    C.View.create s.db ~name:"joined" ~sources:[ ("r", "r") ] ~predicate:[]
      ~project:[ b "r" "k" ]
  in
  Alcotest.(check bool) "duplicate name rejected" true
    (try
       ignore
         (C.Service.register service ~algorithm:(C.Controller.Uniform 3) dup);
       false
     with Invalid_argument _ -> true)

let test_refresh_all_and_status () =
  let s, service = service_scenario () in
  random_txns (Prng.create ~seed:140) s 30;
  let data_now = Database.now s.db in
  C.Service.refresh_all service;
  let statuses = C.Service.status service in
  Alcotest.(check int) "two views" 2 (List.length statuses);
  (* Refreshes commit marker transactions of their own, so earlier views
     end up "stale" only by those markers: every view must cover all data
     transactions. *)
  List.iter
    (fun (st : C.Service.status) ->
      let controller = C.Service.controller service st.name in
      Alcotest.(check bool) (st.name ^ " covers all data txns") true
        (C.Controller.as_of controller >= data_now);
      Alcotest.(check bool) (st.name ^ " as_of <= hwm") true
        (C.Controller.as_of controller <= st.hwm))
    statuses;
  (* Both views correct vs oracle. *)
  List.iter
    (fun name ->
      let controller = C.Service.controller service name in
      let t = C.Controller.as_of controller in
      Alcotest.(check bool) (name ^ " vs oracle") true
        (Relation.equal
           (C.Oracle.view_at s.history (C.Controller.view controller) t)
           (C.Controller.contents controller)))
    (C.Service.names service)

let test_pause_resume () =
  let s, service = service_scenario () in
  random_txns (Prng.create ~seed:141) s 20;
  C.Service.pause service "joined";
  let steps = C.Service.step_all service ~budget:100 in
  Alcotest.(check bool) "only filtered stepped" true (steps > 0);
  let by_name name =
    List.find (fun (st : C.Service.status) -> st.name = name) (C.Service.status service)
  in
  Alcotest.(check bool) "joined stale" true ((by_name "joined").staleness > 0);
  Alcotest.(check int) "filtered caught up" 0 (by_name "filtered").staleness;
  (* Resume and catch up. *)
  C.Service.resume service "joined";
  ignore (C.Service.step_all service ~budget:1000);
  Alcotest.(check int) "joined caught up after resume" 0 (by_name "joined").staleness

let test_step_budget () =
  let s, service = service_scenario () in
  random_txns (Prng.create ~seed:142) s 40;
  let steps = C.Service.step_all service ~budget:3 in
  Alcotest.(check int) "budget respected" 3 steps

let test_gc_all () =
  let s, service = service_scenario () in
  random_txns (Prng.create ~seed:143) s 30;
  C.Service.refresh_all service;
  let removed = C.Service.gc_all service in
  Alcotest.(check bool) "delta rows pruned" true (removed > 0);
  List.iter
    (fun (st : C.Service.status) ->
      Alcotest.(check int) (st.name ^ " delta emptied") 0 st.delta_rows)
    (C.Service.status service)

let test_unknown_view () =
  let _, service = service_scenario () in
  Alcotest.check_raises "unknown view" Not_found (fun () ->
      ignore (C.Service.controller service "nope"))

let suite =
  [
    Alcotest.test_case "register and names" `Quick test_register_and_names;
    Alcotest.test_case "duplicate name rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "refresh_all and status" `Quick test_refresh_all_and_status;
    Alcotest.test_case "pause/resume" `Quick test_pause_resume;
    Alcotest.test_case "step budget" `Quick test_step_budget;
    Alcotest.test_case "gc_all" `Quick test_gc_all;
    Alcotest.test_case "unknown view" `Quick test_unknown_view;
  ]
