(* Theorem fuzzing over random view shapes: self-joins, partial join
   graphs, filters and computed projections, all under racing updates. *)

open Test_support.Helpers
module Fuzz = Test_support.Fuzz
module Time = Roll_delta.Time
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

let prop_compute_delta_fuzzed =
  QCheck.Test.make ~name:"theorem 4.1 over random views" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      let s = Fuzz.random_scenario rng in
      random_txns rng s (10 + Prng.int rng 25);
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 31)) s ctx
        ~per_execute:(Prng.int rng 3);
      let hi = Database.now s.db in
      C.Compute_delta.view_delta ctx ~lo:0 ~hi;
      match
        C.Oracle.check_timed_view_delta_sampled
          ~sample:(fun t -> t mod 5 = 0)
          s.history s.view ctx.C.Ctx.out ~lo:0 ~hi
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let prop_rolling_fuzzed =
  QCheck.Test.make ~name:"theorem 4.3 over random views" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      let s = Fuzz.random_scenario rng in
      random_txns rng s (10 + Prng.int rng 25);
      let ctx = ctx_of ~geometry:true ~t_initial:Time.origin s in
      inject_updates (Prng.create ~seed:(seed + 77)) s ctx
        ~per_execute:(Prng.int rng 3);
      let r = C.Rolling.create ctx ~t_initial:Time.origin in
      let n = C.View.n_sources s.view in
      let intervals = Array.init n (fun _ -> Prng.int_in rng ~lo:1 ~hi:9) in
      for _ = 1 to 10 do
        match C.Rolling.step r ~policy:(C.Rolling.per_relation intervals) with
        | `Advanced _ | `Idle -> ()
      done;
      let hwm = C.Rolling.hwm r in
      (match C.Geometry.check (Option.get ctx.C.Ctx.geometry) ~hwm with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_report ("geometry: " ^ msg));
      match
        C.Oracle.check_timed_view_delta_sampled
          ~sample:(fun t -> t mod 5 = 0)
          s.history s.view ctx.C.Ctx.out ~lo:Time.origin ~hi:hwm
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let prop_deferred_fuzzed_two_way =
  QCheck.Test.make ~name:"deferred Fig. 10 over random 2-way views" ~count:30
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      (* Draw scenarios until one has at most two sources. *)
      let rec draw () =
        let s = Fuzz.random_scenario rng in
        if C.View.n_sources s.view <= 2 then s else draw ()
      in
      let s = draw () in
      random_txns rng s (10 + Prng.int rng 20);
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 13)) s ctx ~per_execute:2;
      let r = C.Rolling_deferred.create ctx ~t_initial:Time.origin in
      let n = C.View.n_sources s.view in
      let intervals = Array.init n (fun _ -> Prng.int_in rng ~lo:1 ~hi:9) in
      for _ = 1 to 10 do
        match
          C.Rolling_deferred.step r ~policy:(C.Rolling_deferred.per_relation intervals)
        with
        | `Advanced _ | `Idle -> ()
      done;
      match
        C.Oracle.check_timed_view_delta_sampled
          ~sample:(fun t -> t mod 4 = 0)
          s.history s.view ctx.C.Ctx.out ~lo:Time.origin
          ~hi:(C.Rolling_deferred.hwm r)
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let suite =
  [
    qtest prop_compute_delta_fuzzed;
    qtest prop_rolling_fuzzed;
    qtest prop_deferred_fuzzed_two_way;
  ]
