(* Synchronous-baseline tests (Section 3.1): Equation 1 (2^n - 1 queries),
   Equation 2 (n queries), full recompute — all three must agree with each
   other, with the oracle, and with the asynchronous algorithms' net
   effect. *)

open Test_support.Helpers
open Roll_relation
module Time = Roll_delta.Time
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

let prop_baselines_agree =
  QCheck.Test.make ~name:"eq1 = eq2 = recompute" ~count:40
    QCheck.small_int
    (fun seed ->
      let s = if seed mod 2 = 0 then two_table () else three_table () in
      let rng = Prng.create ~seed in
      random_txns rng s 30;
      let hi = Database.now s.db in
      let lo = Prng.int rng hi in
      let d1, _ = C.Baseline.eq1 s.history s.view ~lo ~hi in
      let d2, _ = C.Baseline.eq2 s.history s.view ~lo ~hi in
      let d3, _ = C.Baseline.recompute_diff s.history s.view ~lo ~hi in
      Relation.equal d1 d2 && Relation.equal d2 d3)

let test_query_counts () =
  let s2 = two_table () in
  random_txns (Prng.create ~seed:80) s2 10;
  let _, c1 = C.Baseline.eq1 s2.history s2.view ~lo:0 ~hi:(Database.now s2.db) in
  Alcotest.(check int) "eq1 n=2: 3 queries" 3 c1.C.Baseline.queries;
  let _, c2 = C.Baseline.eq2 s2.history s2.view ~lo:0 ~hi:(Database.now s2.db) in
  Alcotest.(check int) "eq2 n=2: 2 queries" 2 c2.C.Baseline.queries;
  let s3 = three_table () in
  random_txns (Prng.create ~seed:81) s3 10;
  let _, c1 = C.Baseline.eq1 s3.history s3.view ~lo:0 ~hi:(Database.now s3.db) in
  Alcotest.(check int) "eq1 n=3: 7 queries" 7 c1.C.Baseline.queries;
  let _, c2 = C.Baseline.eq2 s3.history s3.view ~lo:0 ~hi:(Database.now s3.db) in
  Alcotest.(check int) "eq2 n=3: 3 queries" 3 c2.C.Baseline.queries

let test_empty_interval () =
  let s = two_table () in
  random_txns (Prng.create ~seed:82) s 10;
  let t = Database.now s.db in
  let d1, _ = C.Baseline.eq1 s.history s.view ~lo:t ~hi:t in
  Alcotest.(check bool) "empty interval, empty delta" true (Relation.is_empty d1)

(* The asynchronous algorithm's net effect equals the synchronous one. *)
let prop_async_equals_sync =
  QCheck.Test.make ~name:"ComputeDelta net = synchronous baselines" ~count:25
    QCheck.small_int
    (fun seed ->
      let s = two_table () in
      random_txns (Prng.create ~seed) s 25;
      let hi = Database.now s.db in
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 17)) s ctx ~per_execute:2;
      C.Compute_delta.view_delta ctx ~lo:0 ~hi;
      let sync, _ = C.Baseline.eq1 s.history s.view ~lo:0 ~hi in
      Relation.equal sync (Roll_delta.Delta.net_effect ctx.C.Ctx.out ~lo:0 ~hi))

let test_deletion_heavy () =
  (* Insert everything, then delete everything: the delta over the whole
     interval nets to the empty change only if lo is before the inserts. *)
  let s = two_table () in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 1 ]);
         Database.insert txn ~table:"s" (Tuple.ints [ 1; 2 ])));
  let mid = Database.now s.db in
  ignore
    (Database.run s.db (fun txn ->
         Database.delete txn ~table:"r" (Tuple.ints [ 1; 1 ]);
         Database.delete txn ~table:"s" (Tuple.ints [ 1; 2 ])));
  let hi = Database.now s.db in
  let whole, _ = C.Baseline.eq1 s.history s.view ~lo:0 ~hi in
  Alcotest.(check bool) "whole interval nets to zero" true (Relation.is_empty whole);
  let tail, _ = C.Baseline.eq1 s.history s.view ~lo:mid ~hi in
  Alcotest.(check int) "tail interval deletes the row" (-1)
    (Relation.count tail (Tuple.ints [ 1; 1; 2 ]))

let suite =
  [
    qtest prop_baselines_agree;
    Alcotest.test_case "query counts (2^n-1 vs n)" `Quick test_query_counts;
    Alcotest.test_case "empty interval" `Quick test_empty_interval;
    qtest prop_async_equals_sync;
    Alcotest.test_case "deletion-heavy interval" `Quick test_deletion_heavy;
  ]
