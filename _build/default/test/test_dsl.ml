(* DSL tests: lexer tokens and errors, parser structure, name resolution,
   and end-to-end equivalence with hand-built view definitions. *)

open Roll_relation
module Database = Roll_storage.Database
module C = Roll_core
module Sql = Roll_dsl.Sql
module Lexer = Roll_dsl.Lexer

let int_col name = { Schema.name; ty = Value.T_int }

let str_col name = { Schema.name; ty = Value.T_string }

let db_with_tables () =
  let db = Database.create () in
  let _ =
    Database.create_table db ~name:"orders"
      (Schema.make [ int_col "okey"; int_col "ckey"; int_col "total" ])
  in
  let _ =
    Database.create_table db ~name:"customer"
      (Schema.make [ int_col "ckey"; str_col "region" ])
  in
  db

(* --- Lexer --- *)

let test_lexer_tokens () =
  let tokens = Lexer.tokenize "SELECT a.b, c.d FROM t x WHERE x.y >= -3.5" in
  Alcotest.(check int) "token count" 19 (List.length tokens);
  (match tokens with
  | Lexer.Select :: Lexer.Ident "a" :: Lexer.Dot :: Lexer.Ident "b" :: Lexer.Comma :: _ -> ()
  | _ -> Alcotest.fail "unexpected prefix");
  (* Unary minus is a parser concern: the literal is unsigned. *)
  match List.rev tokens with
  | Lexer.Eof :: Lexer.Float f :: Lexer.Minus :: Lexer.Ge :: _ ->
      Alcotest.(check (float 1e-9)) "unsigned float" 3.5 f
  | _ -> Alcotest.fail "unexpected suffix"

let test_lexer_keywords_case_insensitive () =
  Alcotest.(check bool) "select" true
    (List.hd (Lexer.tokenize "sElEcT x") = Lexer.Select)

let test_lexer_strings () =
  (match Lexer.tokenize "'hello'" with
  | [ Lexer.String s; Lexer.Eof ] -> Alcotest.(check string) "simple" "hello" s
  | _ -> Alcotest.fail "bad string");
  (match Lexer.tokenize "'it''s'" with
  | [ Lexer.String s; Lexer.Eof ] -> Alcotest.(check string) "escaped quote" "it's" s
  | _ -> Alcotest.fail "bad escaped string");
  Alcotest.(check bool) "unterminated raises" true
    (try
       ignore (Lexer.tokenize "'oops");
       false
     with Lexer.Error _ -> true)

let test_lexer_operators () =
  match Lexer.tokenize "= <> != < <= > >=" with
  | [ Lexer.Eq; Lexer.Ne; Lexer.Ne; Lexer.Lt; Lexer.Le; Lexer.Gt; Lexer.Ge; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "operator tokens"

let test_lexer_bad_char () =
  Alcotest.(check bool) "bad char raises" true
    (try
       ignore (Lexer.tokenize "a ; b");
       false
     with Lexer.Error _ -> true)

(* --- Parser --- *)

let test_parse_simple_join () =
  let db = db_with_tables () in
  let view =
    Sql.parse_view db ~name:"v"
      "SELECT o.okey, c.region FROM orders o JOIN customer c ON o.ckey = c.ckey"
  in
  Alcotest.(check int) "two sources" 2 (C.View.n_sources view);
  Alcotest.(check string) "first table" "orders" (C.View.source_table view 0);
  Alcotest.(check int) "one join atom" 1 (List.length (C.View.predicate view));
  (match C.View.predicate view with
  | [ Predicate.Join _ ] -> ()
  | _ -> Alcotest.fail "expected a Join atom");
  let schema = C.View.output_schema view in
  Alcotest.(check string) "output col name" "o_okey" (Schema.column schema 0).Schema.name

let test_parse_where_and_theta () =
  let db = db_with_tables () in
  let view =
    Sql.parse_view db ~name:"v"
      "SELECT o.okey FROM orders o JOIN customer c ON o.ckey = c.ckey AND \
       o.total > 100 WHERE c.region = 'EU'"
  in
  let joins, cmps =
    List.partition (function Predicate.Join _ -> true | _ -> false)
      (C.View.predicate view)
  in
  Alcotest.(check int) "one equi-join" 1 (List.length joins);
  Alcotest.(check int) "two comparisons" 2 (List.length cmps)

let test_parse_same_source_equality_is_cmp () =
  let db = db_with_tables () in
  let view =
    Sql.parse_view db ~name:"v"
      "SELECT o.okey FROM orders o WHERE o.okey = o.ckey"
  in
  match C.View.predicate view with
  | [ Predicate.Cmp (Predicate.Eq, _, _) ] -> ()
  | _ -> Alcotest.fail "same-source equality must be a filter, not a join"

let test_parse_errors () =
  let db = db_with_tables () in
  let expect_error sql =
    Alcotest.(check bool) (Printf.sprintf "error for %S" sql) true
      (try
         ignore (Sql.parse_view db ~name:"v" sql);
         false
       with Sql.Parse_error _ -> true)
  in
  expect_error "FROM orders o";
  expect_error "SELECT o.okey FROM orders";
  expect_error "SELECT o.okey FROM orders o JOIN customer c";
  expect_error "SELECT o.okey FROM orders o WHERE";
  expect_error "SELECT o.okey FROM nosuch o";
  expect_error "SELECT o.nosuchcol FROM orders o";
  expect_error "SELECT z.okey FROM orders o";
  expect_error "SELECT o.okey FROM orders o extra";
  expect_error "SELECT o.okey FROM orders o WHERE o.total >"

let test_parse_equivalent_to_manual () =
  let db = db_with_tables () in
  let capture = Roll_capture.Capture.create db in
  Roll_capture.Capture.attach capture ~table:"orders";
  Roll_capture.Capture.attach capture ~table:"customer";
  let parsed =
    Sql.parse_view db ~name:"v"
      "SELECT c.region, o.total FROM orders o JOIN customer c ON o.ckey = c.ckey \
       WHERE o.total >= 50"
  in
  let b = C.View.binder db [ ("orders", "o"); ("customer", "c") ] in
  let manual =
    C.View.create db ~name:"v"
      ~sources:[ ("orders", "o"); ("customer", "c") ]
      ~predicate:
        [
          Predicate.join (b "o" "ckey") (b "c" "ckey");
          Predicate.cmp Predicate.Ge (Predicate.Col (b "o" "total"))
            (Predicate.Const (Value.Int 50));
        ]
      ~project:[ b "c" "region"; b "o" "total" ]
  in
  (* Load data and compare the two views' contents. *)
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"customer"
           (Tuple.make [ Value.Int 1; Value.Str "EU" ]);
         Database.insert txn ~table:"orders" (Tuple.ints [ 10; 1; 60 ]);
         Database.insert txn ~table:"orders" (Tuple.ints [ 11; 1; 40 ])));
  let history = Roll_storage.History.create db in
  let state_of v = C.Oracle.view_at history v (Database.now db) in
  Alcotest.(check bool) "same contents" true
    (Relation.equal (state_of parsed) (state_of manual));
  Alcotest.(check int) "filter applied" 1 (Relation.distinct_count (state_of parsed))

let test_parse_constants () =
  let db = db_with_tables () in
  let view =
    Sql.parse_view db ~name:"v"
      "SELECT o.okey FROM orders o WHERE o.total <> -5 AND o.okey < 3"
  in
  Alcotest.(check int) "two atoms" 2 (List.length (C.View.predicate view))

let test_end_to_end_maintenance_of_parsed_view () =
  let db = db_with_tables () in
  let capture = Roll_capture.Capture.create db in
  Roll_capture.Capture.attach capture ~table:"orders";
  Roll_capture.Capture.attach capture ~table:"customer";
  let view =
    Sql.parse_view db ~name:"v"
      "SELECT c.region, o.okey FROM orders o JOIN customer c ON o.ckey = c.ckey"
  in
  let controller =
    C.Controller.create db capture view
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 4))
  in
  let history = Roll_storage.History.create db in
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"customer" (Tuple.make [ Value.Int 1; Value.Str "EU" ])));
  for i = 0 to 9 do
    ignore
      (Database.run db (fun txn ->
           Database.insert txn ~table:"orders" (Tuple.ints [ i; 1; 10 * i ])))
  done;
  let t = C.Controller.refresh_latest controller in
  Alcotest.(check bool) "maintained = oracle" true
    (Relation.equal
       (C.Oracle.view_at history view t)
       (C.Controller.contents controller))

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "keywords case-insensitive" `Quick test_lexer_keywords_case_insensitive;
    Alcotest.test_case "string literals" `Quick test_lexer_strings;
    Alcotest.test_case "operators" `Quick test_lexer_operators;
    Alcotest.test_case "bad character" `Quick test_lexer_bad_char;
    Alcotest.test_case "parse simple join" `Quick test_parse_simple_join;
    Alcotest.test_case "parse WHERE and theta atoms" `Quick test_parse_where_and_theta;
    Alcotest.test_case "same-source equality is a filter" `Quick
      test_parse_same_source_equality_is_cmp;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parsed = manual view" `Quick test_parse_equivalent_to_manual;
    Alcotest.test_case "constant operands" `Quick test_parse_constants;
    Alcotest.test_case "maintain a parsed view" `Quick
      test_end_to_end_maintenance_of_parsed_view;
  ]

(* --- printer round trips --- *)

let test_print_view_roundtrip () =
  let db = db_with_tables () in
  let sql =
    "SELECT c.region, o.total FROM orders o JOIN customer c ON o.ckey = c.ckey \
     AND o.total >= 50 WHERE o.okey < 100"
  in
  let v1 = Sql.parse_view db ~name:"v" sql in
  let printed = Sql.print_view v1 in
  let v2 = Sql.parse_view db ~name:"v" printed in
  Alcotest.(check int) "same arity" (C.View.n_sources v1) (C.View.n_sources v2);
  Alcotest.(check int) "same atom count"
    (List.length (C.View.predicate v1))
    (List.length (C.View.predicate v2));
  (* Behavioural equality on data. *)
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"customer" (Tuple.make [ Value.Int 1; Value.Str "EU" ]);
         Database.insert txn ~table:"orders" (Tuple.ints [ 10; 1; 60 ]);
         Database.insert txn ~table:"orders" (Tuple.ints [ 200; 1; 90 ])));
  let history = Roll_storage.History.create db in
  Alcotest.(check bool) "same results" true
    (Relation.equal
       (C.Oracle.view_at history v1 (Database.now db))
       (C.Oracle.view_at history v2 (Database.now db)))

let test_print_view_string_quoting () =
  let db = db_with_tables () in
  let v =
    Sql.parse_view db ~name:"v"
      "SELECT c.ckey FROM customer c WHERE c.region = 'it''s'"
  in
  let printed = Sql.print_view v in
  let v2 = Sql.parse_view db ~name:"v" printed in
  match C.View.predicate v2 with
  | [ Predicate.Cmp (Predicate.Eq, _, Predicate.Const (Value.Str s)) ] ->
      Alcotest.(check string) "quote survives" "it's" s
  | _ -> Alcotest.fail "unexpected predicate shape"

let test_print_view_no_predicate () =
  let db = db_with_tables () in
  let b = C.View.binder db [ ("orders", "o"); ("customer", "c") ] in
  let v =
    C.View.create db ~name:"v"
      ~sources:[ ("orders", "o"); ("customer", "c") ]
      ~predicate:[] ~project:[ b "o" "okey" ]
  in
  let printed = Sql.print_view v in
  let v2 = Sql.parse_view db ~name:"v" printed in
  (* The trivially-true ON clause parses to one constant atom. *)
  Alcotest.(check bool) "parses back" true (C.View.n_sources v2 = 2)

let suite =
  suite
  @ [
      Alcotest.test_case "print/parse round trip" `Quick test_print_view_roundtrip;
      Alcotest.test_case "printer quotes strings" `Quick test_print_view_string_quoting;
      Alcotest.test_case "printer with empty predicate" `Quick test_print_view_no_predicate;
    ]

(* Fuzz: the lexer and parser must fail cleanly (their own exceptions, never
   anything else) on arbitrary input. *)

let garbage_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 60))

let prop_lexer_total =
  QCheck.Test.make ~name:"lexer is total (Error or tokens)" ~count:500
    (QCheck.make ~print:(fun s -> s) garbage_gen)
    (fun input ->
      match Lexer.tokenize input with
      | _ -> true
      | exception Lexer.Error _ -> true)

let prop_parser_total =
  QCheck.Test.make ~name:"parser is total (Parse_error or view)" ~count:500
    (QCheck.make ~print:(fun s -> s) garbage_gen)
    (fun input ->
      let db = db_with_tables () in
      match Sql.parse_view db ~name:"fuzz" input with
      | _ -> true
      | exception Sql.Parse_error _ -> true)

(* Near-valid inputs: mutate one character of a valid statement. *)
let prop_parser_total_near_valid =
  QCheck.Test.make ~name:"parser total on mutated valid SQL" ~count:300
    QCheck.(pair (int_range 0 200) (int_range 32 126))
    (fun (pos, code) ->
      let base =
        "SELECT o.okey, c.region FROM orders o JOIN customer c ON o.ckey = \
         c.ckey WHERE o.total > 10"
      in
      let b = Bytes.of_string base in
      Bytes.set b (pos mod Bytes.length b) (Char.chr code);
      let db = db_with_tables () in
      match Sql.parse_view db ~name:"fuzz" (Bytes.to_string b) with
      | _ -> true
      | exception Sql.Parse_error _ -> true)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_lexer_total;
      QCheck_alcotest.to_alcotest prop_parser_total;
      QCheck_alcotest.to_alcotest prop_parser_total_near_valid;
    ]

(* --- UNION ALL --- *)

let test_union_all_parses () =
  let db = db_with_tables () in
  let views =
    Sql.parse_union db ~name:"u"
      "SELECT o.okey FROM orders o WHERE o.total > 100 \
       UNION ALL SELECT o.ckey FROM orders o WHERE o.total <= 100"
  in
  Alcotest.(check int) "two blocks" 2 (List.length views);
  Alcotest.(check (list string)) "block names" [ "u#0"; "u#1" ]
    (List.map C.View.name views)

let test_union_all_maintained () =
  let db = db_with_tables () in
  let capture = Roll_capture.Capture.create db in
  Roll_capture.Capture.attach capture ~table:"orders";
  Roll_capture.Capture.attach capture ~table:"customer";
  let views =
    Sql.parse_union db ~name:"u"
      "SELECT o.okey, c.region FROM orders o JOIN customer c ON o.ckey = c.ckey \
       WHERE o.total > 50 \
       UNION ALL \
       SELECT o.okey, c.region FROM orders o JOIN customer c ON o.ckey = c.ckey \
       WHERE o.total <= 50"
  in
  let u =
    C.Union_view.create db capture ~views
      ~policies:(List.map (fun _ -> C.Rolling.uniform 4) views)
      ~t_initial:0
  in
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"customer" (Tuple.make [ Value.Int 1; Value.Str "EU" ])));
  for i = 0 to 9 do
    ignore
      (Database.run db (fun txn ->
           Database.insert txn ~table:"orders" (Tuple.ints [ i; 1; 10 * i ])))
  done;
  let target = Database.now db in
  C.Union_view.propagate_until u target;
  C.Union_view.roll_to u target;
  (* The partition covers every order exactly once. *)
  Alcotest.(check int) "all ten orders" 10
    (Relation.distinct_count (C.Union_view.contents u))

let test_union_all_schema_mismatch () =
  let db = db_with_tables () in
  Alcotest.(check bool) "mismatched blocks rejected" true
    (try
       ignore
         (Sql.parse_union db ~name:"u"
            "SELECT o.okey FROM orders o UNION ALL SELECT c.region FROM customer c");
       false
     with Sql.Parse_error _ -> true)

let test_union_in_parse_view_rejected () =
  let db = db_with_tables () in
  Alcotest.(check bool) "parse_view rejects UNION" true
    (try
       ignore
         (Sql.parse_view db ~name:"u"
            "SELECT o.okey FROM orders o UNION ALL SELECT o.okey FROM orders o");
       false
     with Sql.Parse_error _ -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "UNION ALL parses" `Quick test_union_all_parses;
      Alcotest.test_case "UNION ALL maintained" `Quick test_union_all_maintained;
      Alcotest.test_case "UNION ALL schema mismatch" `Quick test_union_all_schema_mismatch;
      Alcotest.test_case "parse_view rejects UNION" `Quick test_union_in_parse_view_rejected;
    ]
