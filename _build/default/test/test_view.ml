(* View-definition tests: binder resolution, validation, accessors,
   projection application, and pretty-printing. *)

open Test_support.Helpers
open Roll_relation
module C = Roll_core

let test_binder () =
  let s = two_table () in
  let b = C.View.binder s.db [ ("r", "left"); ("s", "right") ] in
  let c = b "right" "w" in
  Alcotest.(check int) "source index" 1 c.Predicate.source;
  Alcotest.(check int) "column index" 1 c.Predicate.column;
  Alcotest.(check bool) "unknown alias" true
    (try
       ignore (b "nope" "w");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown column" true
    (try
       ignore (b "left" "zzz");
       false
     with Invalid_argument _ -> true)

let test_accessors () =
  let s = three_table () in
  let v = s.view in
  Alcotest.(check int) "n_sources" 3 (C.View.n_sources v);
  Alcotest.(check string) "table" "b" (C.View.source_table v 1);
  Alcotest.(check string) "alias" "c" (C.View.alias v 2);
  Alcotest.(check int) "source schema arity" 2
    (Schema.arity (C.View.source_schema v 0));
  Alcotest.(check int) "predicate atoms" 2 (List.length (C.View.predicate v));
  Alcotest.(check int) "projection columns" 3 (List.length (C.View.projection v))

let test_validation_errors () =
  let s = two_table () in
  let expect_invalid label f =
    Alcotest.(check bool) label true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  let b = C.View.binder s.db [ ("r", "r"); ("s", "s") ] in
  expect_invalid "no sources" (fun () ->
      C.View.create s.db ~name:"x" ~sources:[] ~predicate:[] ~project:[]);
  expect_invalid "empty projection" (fun () ->
      C.View.create s.db ~name:"x" ~sources:[ ("r", "r") ] ~predicate:[] ~project:[]);
  expect_invalid "column out of range" (fun () ->
      C.View.create s.db ~name:"x" ~sources:[ ("r", "r") ] ~predicate:[]
        ~project:[ Predicate.col 0 9 ]);
  expect_invalid "source out of range in predicate" (fun () ->
      C.View.create s.db ~name:"x" ~sources:[ ("r", "r") ]
        ~predicate:[ Predicate.join (Predicate.col 0 0) (Predicate.col 5 0) ]
        ~project:[ Predicate.col 0 0 ]);
  expect_invalid "duplicate output names" (fun () ->
      C.View.create s.db ~name:"x"
        ~sources:[ ("r", "r"); ("s", "s") ]
        ~predicate:[ Predicate.join (b "r" "k") (b "s" "k") ]
        ~project:[ b "r" "k"; b "r" "k" ])

let test_join_type_check () =
  let db = Database.create () in
  let _ =
    Database.create_table db ~name:"a"
      (Schema.make [ { Schema.name = "x"; ty = Value.T_int } ])
  in
  let _ =
    Database.create_table db ~name:"b"
      (Schema.make [ { Schema.name = "y"; ty = Value.T_string } ])
  in
  Alcotest.(check bool) "cross-type equi-join rejected" true
    (try
       ignore
         (C.View.create db ~name:"x"
            ~sources:[ ("a", "a"); ("b", "b") ]
            ~predicate:[ Predicate.join (Predicate.col 0 0) (Predicate.col 1 0) ]
            ~project:[ Predicate.col 0 0 ]);
       false
     with Invalid_argument _ -> true)

let test_output_schema_names () =
  let s = two_table () in
  let schema = C.View.output_schema s.view in
  Alcotest.(check string) "prefixed names" "r_k" (Schema.column schema 0).Schema.name;
  Alcotest.(check string) "prefixed names" "s_w" (Schema.column schema 2).Schema.name

let test_project_bindings () =
  let s = two_table () in
  let out =
    C.View.project_bindings s.view [| Tuple.ints [ 1; 2 ]; Tuple.ints [ 1; 9 ] |]
  in
  Alcotest.check tuple "projected" (Tuple.ints [ 1; 2; 9 ]) out

let test_pp () =
  let s = two_table () in
  let text = Format.asprintf "%a" C.View.pp s.view in
  Alcotest.(check bool) "mentions name and tables" true
    (contains text "rs" && contains text "r, s")

let suite =
  [
    Alcotest.test_case "binder" `Quick test_binder;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "join type checking" `Quick test_join_type_check;
    Alcotest.test_case "output schema names" `Quick test_output_schema_names;
    Alcotest.test_case "project_bindings" `Quick test_project_bindings;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
