(* Secondary indexes: maintenance under churn, executor index probing
   (same results, smaller footprints), and auto-indexed controllers. *)

open Test_support.Helpers
open Roll_relation
module Time = Roll_delta.Time
module Table = Roll_storage.Table
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

let test_index_backfill_and_probe () =
  let s = two_table () in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 10 ]);
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 20 ]);
         Database.insert txn ~table:"r" (Tuple.ints [ 2; 30 ]);
         (* duplicate copy *)
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 10 ])));
  let table = Database.table s.db "r" in
  Table.create_index table ~columns:[ 0 ];
  Alcotest.(check bool) "has index" true (Table.has_index table ~columns:[ 0 ]);
  Alcotest.(check bool) "no other index" false (Table.has_index table ~columns:[ 1 ]);
  let probe k = Table.index_probe table ~columns:[ 0 ] (Tuple.ints [ k ]) in
  Alcotest.(check int) "key 1 copies" 3 (List.length (probe 1));
  Alcotest.(check int) "key 2 copies" 1 (List.length (probe 2));
  Alcotest.(check int) "key 9 absent" 0 (List.length (probe 9))

let test_index_maintained_by_commits () =
  let s = two_table () in
  let table = Database.table s.db "r" in
  Table.create_index table ~columns:[ 0 ];
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"r" (Tuple.ints [ 5; 1 ])));
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"r" (Tuple.ints [ 5; 2 ])));
  ignore (Database.run s.db (fun txn -> Database.delete txn ~table:"r" (Tuple.ints [ 5; 1 ])));
  let probe = Table.index_probe table ~columns:[ 0 ] (Tuple.ints [ 5 ]) in
  Alcotest.(check int) "one row left" 1 (List.length probe);
  Alcotest.check tuple "the right one" (Tuple.ints [ 5; 2 ]) (List.hd probe)

(* The index always agrees with the table contents, under random churn. *)
let prop_index_consistent =
  QCheck.Test.make ~name:"index agrees with contents under churn" ~count:25
    QCheck.small_int
    (fun seed ->
      let s = two_table () in
      let table = Database.table s.db "r" in
      Table.create_index table ~columns:[ 0 ];
      random_txns (Prng.create ~seed) s 60;
      let ok = ref true in
      for k = 0 to 8 do
        let probed = List.length (Table.index_probe table ~columns:[ 0 ] (Tuple.ints [ k ])) in
        let scanned =
          Relation.fold
            (fun tuple c acc ->
              if Value.equal (Tuple.get tuple 0) (Value.Int k) then acc + c else acc)
            (Table.contents table) 0
        in
        if probed <> scanned then ok := false
      done;
      !ok)

let test_index_validation () =
  let s = two_table () in
  let table = Database.table s.db "r" in
  Alcotest.(check bool) "bad column rejected" true
    (try
       Table.create_index table ~columns:[ 7 ];
       false
     with Invalid_argument _ -> true);
  (* Idempotent creation. *)
  Table.create_index table ~columns:[ 0 ];
  Table.create_index table ~columns:[ 0 ];
  Alcotest.(check int) "one index" 1 (List.length (Table.indexed_columns table))

let test_executor_uses_index () =
  (* A wide key space: probes fetch a few matching rows; a hash join has to
     materialize the whole table. *)
  let module W = Roll_workload.Nway in
  let run_with_index indexed =
    let w = W.create (W.config ~key_range:200 ~initial_rows:400 ~seed:180 ~n:2 ()) in
    W.load_initial w;
    W.churn w ~n:30;
    if indexed then
      Table.create_index (Database.table (W.db w) "t1") ~columns:[ 0 ];
    let ctx = C.Ctx.create ~t_initial:Time.origin (W.db w) (W.capture w) (W.view w) in
    Roll_capture.Capture.advance (W.capture w);
    let now = Database.now (W.db w) in
    let q =
      C.Pquery.replace (C.Pquery.all_base 2) 0 (C.Pquery.Win { lo = now - 5; hi = now })
    in
    let plan = C.Executor.explain ctx q in
    let rows, reads = C.Executor.evaluate ctx q in
    let net = Relation.create (C.View.output_schema (W.view w)) in
    List.iter (fun (t, c, _) -> Relation.add net t c) rows;
    (plan, net, List.assoc "t1" reads)
  in
  let plan_no, net_no, touched_no = run_with_index false in
  let plan_ix, net_ix, touched_ix = run_with_index true in
  Alcotest.(check bool) "hash join without index" true (contains plan_no "hash-join t1");
  Alcotest.(check bool) "index probe with index" true (contains plan_ix "index-probe t1");
  Alcotest.check relation "same results" net_no net_ix;
  Alcotest.(check bool)
    (Printf.sprintf "probing touches fewer rows (%d < %d)" touched_ix touched_no)
    true
    (touched_ix < touched_no)

let test_auto_indexed_controller_correct () =
  let s = three_table () in
  random_txns (Prng.create ~seed:181) s 30;
  let controller =
    C.Controller.create ~auto_index:true s.db s.capture s.view
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 3; 6; 10 |]))
  in
  (* Join columns got indexes. *)
  Alcotest.(check bool) "index on b.k" true
    (Table.has_index (Database.table s.db "b") ~columns:[ 0 ]);
  random_txns (Prng.create ~seed:182) s 40;
  let t = C.Controller.refresh_latest controller in
  Alcotest.check relation "auto-indexed view = oracle"
    (C.Oracle.view_at s.history s.view t)
    (C.Controller.contents controller)

(* Full theorem check with indexes on: the probed fast path must not change
   any timestamps or counts. *)
let prop_indexed_rolling_timed_delta =
  QCheck.Test.make ~name:"indexed rolling still a timed delta" ~count:15
    QCheck.small_int
    (fun seed ->
      let s = two_table () in
      Table.create_index (Database.table s.db "r") ~columns:[ 0 ];
      Table.create_index (Database.table s.db "s") ~columns:[ 0 ];
      random_txns (Prng.create ~seed) s 25;
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 8)) s ctx ~per_execute:2;
      let r = C.Rolling.create ctx ~t_initial:Time.origin in
      let target = Database.now s.db in
      C.Rolling.run_until r ~target ~policy:(C.Rolling.per_relation [| 3; 7 |]);
      match
        C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out
          ~lo:Time.origin ~hi:(C.Rolling.hwm r)
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let suite =
  [
    Alcotest.test_case "backfill and probe" `Quick test_index_backfill_and_probe;
    Alcotest.test_case "maintained by commits" `Quick test_index_maintained_by_commits;
    qtest prop_index_consistent;
    Alcotest.test_case "validation and idempotence" `Quick test_index_validation;
    Alcotest.test_case "executor uses index" `Quick test_executor_uses_index;
    Alcotest.test_case "auto-indexed controller" `Quick test_auto_indexed_controller_correct;
    qtest prop_indexed_rolling_timed_delta;
  ]
