(* RollingPropagate tests: Theorem 4.3 for the corrected algorithm (any n,
   any schedule), the geometry brick-tiling invariant after every step, and
   the deferred Figure 10 variant for two-way views. *)

open Test_support.Helpers
module Time = Roll_delta.Time
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

let prop_theorem_4_3 =
  QCheck.Test.make ~name:"theorem 4.3: rolling prefix is a timed delta"
    ~count:25
    QCheck.(quad small_int (int_range 1 6) (int_range 1 9) (int_range 0 3))
    (fun (seed, d0, d1, burst) ->
      let s = if seed mod 2 = 0 then two_table () else three_table () in
      random_txns (Prng.create ~seed) s 25;
      let ctx = ctx_of ~geometry:true ~t_initial:Time.origin s in
      inject_updates (Prng.create ~seed:(seed + 7)) s ctx ~per_execute:burst;
      let r = C.Rolling.create ctx ~t_initial:Time.origin in
      let policy i = if i = 0 then d0 else d1 in
      let ok = ref true in
      for _ = 1 to 8 do
        (match C.Rolling.step r ~policy with `Advanced _ | `Idle -> ());
        let hwm = C.Rolling.hwm r in
        (match C.Geometry.check (Option.get ctx.C.Ctx.geometry) ~hwm with
        | Ok () -> ()
        | Error msg ->
            ok := false;
            print_endline ("geometry: " ^ msg));
        match
          C.Oracle.check_timed_view_delta_sampled
            ~sample:(fun t -> t mod 4 = 0)
            s.history s.view ctx.C.Ctx.out ~lo:Time.origin ~hi:hwm
        with
        | Ok () -> ()
        | Error msg ->
            ok := false;
            print_endline msg
      done;
      !ok)

(* Correctness must not depend on the step schedule: drive frontiers in a
   random relation order via step_relation. *)
let prop_schedule_independence =
  QCheck.Test.make ~name:"any step_relation schedule is correct" ~count:20
    QCheck.small_int
    (fun seed ->
      let s = three_table () in
      let rng = Prng.create ~seed in
      random_txns rng s 20;
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 3)) s ctx ~per_execute:1;
      let r = C.Rolling.create ctx ~t_initial:Time.origin in
      for _ = 1 to 15 do
        let i = Prng.int rng 3 in
        match C.Rolling.step_relation r i ~interval:(1 + Prng.int rng 6) with
        | `Advanced _ | `Idle -> ()
      done;
      match
        C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out
          ~lo:Time.origin ~hi:(C.Rolling.hwm r)
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let test_hwm_is_min_frontier () =
  let s = three_table () in
  random_txns (Prng.create ~seed:60) s 20;
  let ctx = ctx_of s in
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  ignore (C.Rolling.step_relation r 0 ~interval:5);
  ignore (C.Rolling.step_relation r 1 ~interval:3);
  Alcotest.(check int) "tfwd 0" 5 (C.Rolling.tfwd r 0);
  Alcotest.(check int) "tfwd 1" 3 (C.Rolling.tfwd r 1);
  Alcotest.(check int) "tfwd 2 untouched" 0 (C.Rolling.tfwd r 2);
  Alcotest.(check int) "hwm = min" 0 (C.Rolling.hwm r);
  ignore (C.Rolling.step_relation r 2 ~interval:4);
  Alcotest.(check int) "hwm = min after" 3 (C.Rolling.hwm r)

let test_hwm_monotone () =
  let s = two_table () in
  random_txns (Prng.create ~seed:61) s 30;
  let ctx = ctx_of s in
  inject_updates (Prng.create ~seed:62) s ctx ~per_execute:2;
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  let prev = ref (C.Rolling.hwm r) in
  for _ = 1 to 20 do
    (match C.Rolling.step r ~policy:(C.Rolling.uniform 3) with
    | `Advanced _ | `Idle -> ());
    let h = C.Rolling.hwm r in
    if h < !prev then Alcotest.fail "hwm went backwards";
    prev := h
  done

let test_step_picks_smallest_frontier () =
  let s = two_table () in
  random_txns (Prng.create ~seed:63) s 20;
  let ctx = ctx_of s in
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  (match C.Rolling.step r ~policy:(C.Rolling.per_relation [| 4; 2 |]) with
  | `Advanced (i, _) -> Alcotest.(check int) "first pick is relation 0" 0 i
  | `Idle -> Alcotest.fail "should advance");
  match C.Rolling.step r ~policy:(C.Rolling.per_relation [| 4; 2 |]) with
  | `Advanced (i, _) -> Alcotest.(check int) "then the one left behind" 1 i
  | `Idle -> Alcotest.fail "should advance"

let test_idle_when_caught_up () =
  let s = two_table () in
  random_txns (Prng.create ~seed:64) s 10;
  let ctx = ctx_of s in
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  let rec drain n =
    if n > 200 then Alcotest.fail "never idled";
    match C.Rolling.step r ~policy:(C.Rolling.uniform 50) with
    | `Advanced _ -> drain (n + 1)
    | `Idle -> ()
  in
  drain 0

let test_bad_interval () =
  let s = two_table () in
  random_txns (Prng.create ~seed:65) s 3;
  let ctx = ctx_of s in
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Rolling.step_relation: interval must be positive")
    (fun () -> ignore (C.Rolling.step_relation r 0 ~interval:0))

let test_star_schema_policy () =
  (* A fact axis stepped with a small interval and dimensions with a large
     one: the realistic configuration from Section 3.4. *)
  let star = Roll_workload.Star.create Roll_workload.Star.default_config in
  Roll_workload.Star.load_initial star;
  Roll_workload.Star.mixed_txns star ~n:60 ~dim_fraction:0.05;
  let ctx =
    C.Ctx.create ~t_initial:Time.origin (Roll_workload.Star.db star)
      (Roll_workload.Star.capture star)
      (Roll_workload.Star.view star)
  in
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  let target = Database.now (Roll_workload.Star.db star) in
  C.Rolling.run_until r ~target
    ~policy:(C.Rolling.per_relation [| 10; 100; 100 |]);
  check_ok
    (C.Oracle.check_timed_view_delta_sampled
       ~sample:(fun t -> t mod 25 = 0)
       (Roll_workload.Star.history star)
       (Roll_workload.Star.view star)
       ctx.C.Ctx.out ~lo:Time.origin ~hi:(C.Rolling.hwm r))

(* --- Deferred (Figure 10) variant --- *)

let prop_deferred_two_way =
  QCheck.Test.make ~name:"deferred Figure 10 correct for 2-way" ~count:25
    QCheck.(triple small_int (int_range 1 6) (int_range 1 9))
    (fun (seed, d0, d1) ->
      let s = two_table () in
      random_txns (Prng.create ~seed) s 25;
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 5)) s ctx ~per_execute:2;
      let r = C.Rolling_deferred.create ctx ~t_initial:Time.origin in
      for _ = 1 to 10 do
        match C.Rolling_deferred.step r ~policy:(C.Rolling_deferred.per_relation [| d0; d1 |]) with
        | `Advanced _ | `Idle -> ()
      done;
      match
        C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out
          ~lo:Time.origin ~hi:(C.Rolling_deferred.hwm r)
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

(* Section 3.4's claim: with skewed per-relation intervals, the deferred
   process issues fewer propagation queries than Propagate does at the
   granularity of its finest interval. *)
let test_deferred_fewer_queries_than_propagate () =
  let scenario () =
    let s = two_table () in
    random_txns (Prng.create ~seed:66) s 60;
    s
  in
  let deferred =
    let s = scenario () in
    let ctx = ctx_of s in
    let r = C.Rolling_deferred.create ctx ~t_initial:Time.origin in
    C.Rolling_deferred.run_until r ~target:(Database.now s.db)
      ~policy:(C.Rolling_deferred.per_relation [| 20; 4 |]);
    C.Stats.queries ctx.C.Ctx.stats
  in
  let propagate =
    let s = scenario () in
    let ctx = ctx_of s in
    let p = C.Propagate.create ctx ~t_initial:Time.origin in
    C.Propagate.run_until p ~target:(Database.now s.db) ~interval:4;
    C.Stats.queries ctx.C.Ctx.stats
  in
  Alcotest.(check bool)
    (Printf.sprintf "deferred (%d) < propagate (%d)" deferred propagate)
    true (deferred < propagate)

let test_deferred_outstanding_tracking () =
  let s = two_table () in
  random_txns (Prng.create ~seed:67) s 20;
  let ctx = ctx_of s in
  let r = C.Rolling_deferred.create ctx ~t_initial:Time.origin in
  (* First step advances relation 0 and leaves its query outstanding. *)
  (match C.Rolling_deferred.step r ~policy:(C.Rolling_deferred.uniform 3) with
  | `Advanced (i, _) -> Alcotest.(check int) "relation 0 first" 0 i
  | `Idle -> Alcotest.fail "should advance");
  Alcotest.(check int) "one outstanding query" 1 (C.Rolling_deferred.outstanding r);
  Alcotest.(check int) "tcomp pinned to its start" 0 (C.Rolling_deferred.tcomp r 0)

let suite =
  [
    qtest prop_theorem_4_3;
    qtest prop_schedule_independence;
    Alcotest.test_case "hwm is min frontier" `Quick test_hwm_is_min_frontier;
    Alcotest.test_case "hwm monotone" `Quick test_hwm_monotone;
    Alcotest.test_case "step picks smallest frontier" `Quick test_step_picks_smallest_frontier;
    Alcotest.test_case "idles when caught up" `Quick test_idle_when_caught_up;
    Alcotest.test_case "rejects non-positive interval" `Quick test_bad_interval;
    Alcotest.test_case "star-schema per-relation policy" `Quick test_star_schema_policy;
    qtest prop_deferred_two_way;
    Alcotest.test_case "deferred beats Propagate on queries" `Quick
      test_deferred_fewer_queries_than_propagate;
    Alcotest.test_case "deferred outstanding tracking" `Quick test_deferred_outstanding_tracking;
  ]
