(* ComputeDelta (Figure 4) tests: Theorem 4.1 under heavy concurrency,
   query-count structure, error conditions, and the Section 3.3 timestamp
   examples reproduced literally. *)

open Test_support.Helpers
open Roll_relation
module Time = Roll_delta.Time
module Delta = Roll_delta.Delta
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

(* Theorem 4.1 as a property: for random histories, interval choices and
   injected concurrent updates, the output is a timed delta table. *)
let prop_theorem_4_1 =
  QCheck.Test.make ~name:"theorem 4.1: ComputeDelta yields a timed delta"
    ~count:30
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, burst) ->
      let s = if seed mod 2 = 0 then two_table () else three_table () in
      let rng = Prng.create ~seed in
      random_txns rng s (10 + Prng.int rng 30);
      let lo = Prng.int rng (Database.now s.db / 2) in
      let hi = Prng.int_in rng ~lo:(lo + 1) ~hi:(Database.now s.db) in
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 1000)) s ctx ~per_execute:burst;
      C.Compute_delta.view_delta ctx ~lo ~hi;
      match C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out ~lo ~hi with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let test_no_updates_no_delta () =
  let s = two_table () in
  random_txns (Prng.create ~seed:40) s 10;
  let now = Database.now s.db in
  (* Consume some CSNs without touching the view's tables. *)
  for _ = 1 to 5 do
    ignore (Database.commit_marker s.db ~tag:"noise")
  done;
  let ctx = ctx_of s in
  C.Compute_delta.view_delta ctx ~lo:now ~hi:(Database.now s.db);
  Alcotest.(check int) "empty delta" 0 (Delta.length ctx.C.Ctx.out)

let test_future_target_rejected () =
  let s = two_table () in
  let ctx = ctx_of s in
  Alcotest.check_raises "future target"
    (Invalid_argument "ComputeDelta: target time has not elapsed yet")
    (fun () -> C.Compute_delta.view_delta ctx ~lo:0 ~hi:(Database.now s.db + 1))

let test_arity_mismatch_rejected () =
  let s = two_table () in
  let ctx = ctx_of s in
  Alcotest.check_raises "vector arity"
    (Invalid_argument "ComputeDelta: timestamp vector arity mismatch")
    (fun () -> C.Compute_delta.run ctx (C.Pquery.all_base 2) [| 0 |] 0)

(* Without concurrent updates, ComputeDelta for a 2-way view issues exactly
   the four queries of Equation 3. *)
let test_equation_3_query_structure () =
  let s = two_table () in
  random_txns (Prng.create ~seed:41) s 15;
  let ctx = ctx_of s in
  (* Observe the full Figure 4 structure, without the empty-window skip. *)
  ctx.C.Ctx.skip_empty_windows <- false;
  C.Compute_delta.view_delta ctx ~lo:0 ~hi:(Database.now s.db);
  Alcotest.(check int) "four queries (Equation 3)" 4 (C.Stats.queries ctx.C.Ctx.stats);
  let descriptions =
    List.map (fun fp -> fp.C.Stats.description) (C.Stats.footprints ctx.C.Ctx.stats)
  in
  (* Two positive forward queries, two negative compensations. *)
  let signs = List.map (fun d -> d.[0]) descriptions in
  Alcotest.(check (list char)) "signs" [ '+'; '-'; '+'; '-' ] signs

let count_queries n =
  (* Query count for an n-way view without concurrent updates. *)
  let db = Database.create () in
  let schema = Schema.make [ { Schema.name = "k"; ty = Value.T_int } ] in
  for i = 0 to n - 1 do
    ignore (Database.create_table db ~name:(Printf.sprintf "t%d" i) schema)
  done;
  let capture = Roll_capture.Capture.create db in
  for i = 0 to n - 1 do
    Roll_capture.Capture.attach capture ~table:(Printf.sprintf "t%d" i)
  done;
  let sources = List.init n (fun i -> (Printf.sprintf "t%d" i, Printf.sprintf "a%d" i)) in
  let b = C.View.binder db sources in
  let view =
    C.View.create db ~name:"v" ~sources
      ~predicate:
        (List.init (n - 1) (fun i ->
             Predicate.join
               (b (Printf.sprintf "a%d" i) "k")
               (b (Printf.sprintf "a%d" (i + 1)) "k")))
      ~project:[ b "a0" "k" ]
  in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t0" (Tuple.ints [ 1 ])));
  let ctx = C.Ctx.create db capture view in
  ctx.C.Ctx.skip_empty_windows <- false;
  C.Compute_delta.view_delta ctx ~lo:0 ~hi:(Database.now db);
  C.Stats.queries ctx.C.Ctx.stats

(* The recursion produces Sum_{i=1..n} 2^(i-1)... = 2^n - 1 plus the extra
   compensations of compensations; what matters here is determinism and
   growth, pinned as a regression. *)
let test_query_count_growth () =
  let q1 = count_queries 1 in
  let q2 = count_queries 2 in
  let q3 = count_queries 3 in
  let q4 = count_queries 4 in
  Alcotest.(check int) "n=1 needs one query" 1 q1;
  Alcotest.(check int) "n=2 needs four" 4 q2;
  Alcotest.(check bool) "monotone growth" true (q2 < q3 && q3 < q4)

(* Section 3.3, deletion example: r1 deleted from R1 at t_a, r2 deleted
   from R2 at t_b > t_a; the net view delta must delete r1r2 at t_a. *)
let test_section_3_3_deletions () =
  let s = two_table () in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 10 ]);
         Database.insert txn ~table:"s" (Tuple.ints [ 1; 20 ])));
  let t0 = Database.now s.db in
  ignore (Database.run s.db (fun txn -> Database.delete txn ~table:"r" (Tuple.ints [ 1; 10 ])));
  let t_a = Database.now s.db in
  ignore (Database.run s.db (fun txn -> Database.delete txn ~table:"s" (Tuple.ints [ 1; 20 ])));
  let ctx = ctx_of s in
  C.Compute_delta.view_delta ctx ~lo:t0 ~hi:(Database.now s.db);
  let net = Delta.net_effect ctx.C.Ctx.out ~lo:t0 ~hi:t_a in
  Alcotest.(check int) "deletion effective at t_a" (-1)
    (Relation.count net (Tuple.ints [ 1; 10; 20 ]))

(* Section 3.3, insertion example: x1 inserted at t_a, x2 at t_b > t_a; the
   insertion of x1x2 must take effect at t_b (not t_a). *)
let test_section_3_3_insertions () =
  let s = two_table () in
  let t0 = Database.now s.db in
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"r" (Tuple.ints [ 2; 11 ])));
  let t_a = Database.now s.db in
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"s" (Tuple.ints [ 2; 22 ])));
  let t_b = Database.now s.db in
  let ctx = ctx_of s in
  C.Compute_delta.view_delta ctx ~lo:t0 ~hi:t_b;
  let tuple = Tuple.ints [ 2; 11; 22 ] in
  let at_ta = Delta.net_effect ctx.C.Ctx.out ~lo:t0 ~hi:t_a in
  Alcotest.(check int) "not yet there at t_a" 0 (Relation.count at_ta tuple);
  let at_tb = Delta.net_effect ctx.C.Ctx.out ~lo:t0 ~hi:t_b in
  Alcotest.(check int) "inserted at t_b" 1 (Relation.count at_tb tuple)

(* A single-relation "join" degenerates to copying the delta window; no
   compensation is ever needed. *)
let test_single_relation_view () =
  let db = Database.create () in
  let schema = Schema.make [ { Schema.name = "k"; ty = Value.T_int } ] in
  let _ = Database.create_table db ~name:"t" schema in
  let capture = Roll_capture.Capture.create db in
  Roll_capture.Capture.attach capture ~table:"t";
  let b = C.View.binder db [ ("t", "t") ] in
  let view =
    C.View.create db ~name:"copy" ~sources:[ ("t", "t") ] ~predicate:[]
      ~project:[ b "t" "k" ]
  in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" (Tuple.ints [ 7 ])));
  let ctx = C.Ctx.create db capture view in
  C.Compute_delta.view_delta ctx ~lo:0 ~hi:(Database.now db);
  Alcotest.(check int) "one query" 1 (C.Stats.queries ctx.C.Ctx.stats);
  Alcotest.(check int) "one row" 1 (Delta.length ctx.C.Ctx.out)

(* Consecutive ComputeDelta runs over adjacent intervals compose into a
   delta for the union interval (the basis for Propagate). *)
let test_adjacent_intervals_compose () =
  let s = two_table () in
  let rng = Prng.create ~seed:42 in
  random_txns rng s 20;
  let mid = Database.now s.db in
  random_txns rng s 20;
  let hi = Database.now s.db in
  let ctx = ctx_of s in
  C.Compute_delta.view_delta ctx ~lo:0 ~hi:mid;
  C.Compute_delta.view_delta ctx ~lo:mid ~hi;
  check_ok (C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out ~lo:0 ~hi)

(* The empty-window skip is a pure optimization: same delta with and
   without it. *)
let test_skip_ablation_equivalence () =
  let run skip =
    let s = two_table () in
    random_txns (Prng.create ~seed:43) s 25;
    let ctx = ctx_of s in
    ctx.C.Ctx.skip_empty_windows <- skip;
    C.Compute_delta.view_delta ctx ~lo:0 ~hi:(Database.now s.db);
    (ctx, Database.now s.db)
  in
  let ctx_skip, t = run true in
  let ctx_full, _ = run false in
  for b = 1 to t do
    if
      not
        (Relation.equal
           (Delta.net_effect ctx_skip.C.Ctx.out ~lo:0 ~hi:b)
           (Delta.net_effect ctx_full.C.Ctx.out ~lo:0 ~hi:b))
    then Alcotest.failf "prefix %d differs with skip on/off" b
  done;
  Alcotest.(check bool) "skip saves queries" true
    (C.Stats.queries ctx_skip.C.Ctx.stats < C.Stats.queries ctx_full.C.Ctx.stats)

let suite =
  [
    qtest prop_theorem_4_1;
    Alcotest.test_case "empty-window skip is equivalent" `Quick
      test_skip_ablation_equivalence;
    Alcotest.test_case "quiet interval yields empty delta" `Quick test_no_updates_no_delta;
    Alcotest.test_case "future target rejected" `Quick test_future_target_rejected;
    Alcotest.test_case "arity mismatch rejected" `Quick test_arity_mismatch_rejected;
    Alcotest.test_case "Equation 3 query structure" `Quick test_equation_3_query_structure;
    Alcotest.test_case "query count growth with n" `Quick test_query_count_growth;
    Alcotest.test_case "Section 3.3 deletion timing" `Quick test_section_3_3_deletions;
    Alcotest.test_case "Section 3.3 insertion timing" `Quick test_section_3_3_insertions;
    Alcotest.test_case "single-relation view" `Quick test_single_relation_view;
    Alcotest.test_case "adjacent intervals compose" `Quick test_adjacent_intervals_compose;
  ]
