(* Heavy one-off fuzz run: many random scenarios through ComputeDelta and
   Rolling with full (unsampled) oracle checks. Not part of dune runtest;
   run manually when touching the propagation algorithms:

     dune exec test/debug/fuzz_soak.exe -- [rounds]
*)
open Test_support.Helpers
module Fuzz = Test_support.Fuzz
module C = Roll_core

let () =
  let rounds = try int_of_string Sys.argv.(1) with _ -> 300 in
  let failures = ref 0 in
  for seed = 1 to rounds do
    let rng = Prng.create ~seed in
    let s = Fuzz.random_scenario rng in
    random_txns rng s (5 + Prng.int rng 30);
    let ctx = ctx_of ~geometry:true ~t_initial:0 s in
    inject_updates (Prng.create ~seed:(seed * 13)) s ctx ~per_execute:(Prng.int rng 4);
    let use_rolling = Prng.bool rng in
    let hwm =
      if use_rolling then begin
        let r = C.Rolling.create ctx ~t_initial:0 in
        let n = C.View.n_sources s.view in
        let intervals = Array.init n (fun _ -> Prng.int_in rng ~lo:1 ~hi:11) in
        for _ = 1 to 12 do
          match C.Rolling.step r ~policy:(C.Rolling.per_relation intervals) with
          | `Advanced _ | `Idle -> ()
        done;
        C.Rolling.hwm r
      end
      else begin
        let hi = Database.now s.db in
        C.Compute_delta.view_delta ctx ~lo:0 ~hi;
        hi
      end
    in
    (match C.Geometry.check (Option.get ctx.C.Ctx.geometry) ~hwm with
    | Ok () -> ()
    | Error msg ->
        incr failures;
        Printf.printf "seed %d GEOMETRY: %s\n%!" seed msg);
    (match
       C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out ~lo:0 ~hi:hwm
     with
    | Ok () -> ()
    | Error msg ->
        incr failures;
        Printf.printf "seed %d ORACLE (%s): %s\n%!" seed
          (if use_rolling then "rolling" else "compute_delta")
          (String.sub msg 0 (min 200 (String.length msg))));
    if seed mod 50 = 0 then Printf.printf "...%d/%d done\n%!" seed rounds
  done;
  Printf.printf "fuzz soak: %d rounds, %d failures\n" rounds !failures;
  if !failures > 0 then exit 1
