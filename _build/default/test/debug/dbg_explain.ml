open Test_support.Helpers
module C = Roll_core
let () =
  let s = three_table () in
  random_txns (Prng.create ~seed:32) s 30;
  let ctx = ctx_of s in
  Roll_capture.Capture.advance s.capture;
  let now = Database.now s.db in
  print_string (C.Executor.explain ctx
    (C.Pquery.replace (C.Pquery.all_base 3) 2 (C.Pquery.Win { lo = now - 3; hi = now })))
