(* Standalone debug driver for rolling-propagation coverage. *)
open Test_support.Helpers
module Time = Roll_delta.Time

let () =
  let s = three_table () in
  let rng = Prng.create ~seed:3 in
  random_txns rng s 25;
  let ctx = ctx_of ~geometry:true ~t_initial:Time.origin s in
  inject_updates (Prng.create ~seed:11) s ctx ~per_execute:1;
  let rolling = C.Rolling.create ctx ~t_initial:Time.origin in
  let target = Database.now s.db in
  let policy = C.Rolling.per_relation [| 2; 4; 7 |] in
  let steps = ref 0 in
  let continue = ref true in
  while !continue && C.Rolling.hwm rolling < target do
    (match C.Rolling.step rolling ~policy with
    | `Advanced (i, hwm) ->
        incr steps;
        let g = Option.get ctx.C.Ctx.geometry in
        Printf.printf "step %d: rel=%d hwm=%d tfwd=[%d;%d;%d] tcomp=[%d;%d;%d] boxes=%d\n"
          !steps i hwm
          (C.Rolling.tfwd rolling 0) (C.Rolling.tfwd rolling 1) (C.Rolling.tfwd rolling 2)
          (C.Rolling.tfwd rolling 0) (C.Rolling.tfwd rolling 1) (C.Rolling.tfwd rolling 2)
          (C.Geometry.n_boxes g);
        (match C.Geometry.check g ~hwm with
        | Ok () -> ()
        | Error msg ->
            Printf.printf "GEOMETRY FAIL at step %d: %s\n" !steps msg;
            continue := false)
    | `Idle -> continue := false)
  done;
  Printf.printf "done: steps=%d hwm=%d target=%d\n" !steps (C.Rolling.hwm rolling) target;
  match
    C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out
      ~lo:Time.origin ~hi:(C.Rolling.hwm rolling)
  with
  | Ok () -> print_endline "oracle OK"
  | Error msg -> print_endline ("ORACLE FAIL: " ^ msg)

(* Dump the delta rows for the offending tuple, and the true change times. *)
let () =
  let s = three_table () in
  let rng = Prng.create ~seed:3 in
  random_txns rng s 25;
  let ctx = ctx_of ~geometry:true ~t_initial:Time.origin s in
  inject_updates (Prng.create ~seed:11) s ctx ~per_execute:1;
  let bad = Roll_relation.Tuple.ints [ 4; 6; 2 ] in
  ctx.C.Ctx.on_emit <-
    (fun ~description tuple count ts ->
      if Roll_relation.Tuple.equal tuple bad then
        Printf.printf "EMIT %s -> (%+d, ts=%d)\n" description count ts);
  let rolling = C.Rolling.create ctx ~t_initial:Time.origin in
  let target = Database.now s.db in
  let policy = C.Rolling.per_relation [| 2; 4; 7 |] in
  C.Rolling.run_until rolling ~target ~policy;
  (match ctx.C.Ctx.geometry with
   | Some g ->
       List.iter
         (fun (sign, label) -> Printf.printf "COVER %+d %s\n" sign label)
         (C.Geometry.boxes_covering g [| 1; 1; 27 |]);
       (match C.Geometry.check g ~hwm:(C.Rolling.hwm rolling) with
        | Ok () -> print_endline "hwm-region coverage OK"
        | Error m -> print_endline ("hwm-region coverage FAIL: " ^ m))
   | None -> print_endline "no geometry");
  Printf.printf "\nrows for (4,6,2): ";
  Roll_delta.Delta.iter
    (fun (r : Roll_delta.Delta.row) ->
      if Roll_relation.Tuple.equal r.tuple bad then
        Printf.printf "(ts=%d,%+d) " r.ts r.count)
    ctx.C.Ctx.out;
  print_newline ();
  (* When does the oracle say this tuple appears? *)
  for t = 0 to C.Rolling.hwm rolling do
    let v = C.Oracle.view_at s.history s.view t in
    let c = Roll_relation.Relation.count v bad in
    if c <> 0 then Printf.printf "oracle: V_%d has count %d\n" t c
  done
