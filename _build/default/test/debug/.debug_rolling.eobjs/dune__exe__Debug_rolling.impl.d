test/debug/debug_rolling.ml: C Database List Option Printf Prng Roll_delta Roll_relation Test_support
