test/debug/dbg_explain.mli:
