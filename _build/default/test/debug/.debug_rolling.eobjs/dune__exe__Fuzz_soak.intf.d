test/debug/fuzz_soak.mli:
