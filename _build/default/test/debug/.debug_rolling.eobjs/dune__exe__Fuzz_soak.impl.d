test/debug/fuzz_soak.ml: Array Database Option Printf Prng Roll_core String Sys Test_support
