test/debug/dbg_explain.ml: Database Prng Roll_capture Roll_core Test_support
