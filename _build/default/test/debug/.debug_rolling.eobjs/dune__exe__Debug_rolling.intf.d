test/debug/debug_rolling.mli:
