(* Storage-engine tests: transactional semantics, WAL, commit markers,
   simulated wall clock, and temporal history reconstruction. *)

open Roll_relation
module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Table = Roll_storage.Table
module Wal = Roll_storage.Wal
module History = Roll_storage.History
module Prng = Roll_util.Prng
module H = Test_support.Helpers

let qtest = QCheck_alcotest.to_alcotest

let schema = Schema.make [ { Schema.name = "k"; ty = Value.T_int } ]

let fresh () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"t" schema in
  db

let t1 = Tuple.ints [ 1 ]

let t2 = Tuple.ints [ 2 ]

let test_commit_applies () =
  let db = fresh () in
  let csn = Database.run db (fun txn -> Database.insert txn ~table:"t" t1) in
  Alcotest.(check int) "first csn" 1 csn;
  Alcotest.(check int) "applied" 1 (Table.count (Database.table db "t") t1);
  Alcotest.(check int) "now" 1 (Database.now db)

let test_txn_buffering () =
  let db = fresh () in
  let txn = Database.begin_txn db in
  Database.insert txn ~table:"t" t1;
  Alcotest.(check int) "not yet visible" 0 (Table.count (Database.table db "t") t1);
  ignore (Database.commit db txn);
  Alcotest.(check int) "visible after commit" 1 (Table.count (Database.table db "t") t1)

let test_abort () =
  let db = fresh () in
  let txn = Database.begin_txn db in
  Database.insert txn ~table:"t" t1;
  Database.abort txn;
  Alcotest.(check int) "nothing applied" 0 (Table.count (Database.table db "t") t1);
  Alcotest.(check int) "no commit" 0 (Database.now db);
  Alcotest.(check bool) "closed txn rejected" true
    (try
       Database.insert txn ~table:"t" t1;
       false
     with Invalid_argument _ -> true)

let test_run_rolls_back_on_exception () =
  let db = fresh () in
  (try
     ignore
       (Database.run db (fun txn ->
            Database.insert txn ~table:"t" t1;
            failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "no partial effects" 0 (Table.count (Database.table db "t") t1)

let test_over_delete_rejected_atomically () =
  let db = fresh () in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t1));
  let txn = Database.begin_txn db in
  Database.insert txn ~table:"t" t2;
  Database.delete txn ~table:"t" t1;
  Database.delete txn ~table:"t" t1;
  Alcotest.(check bool) "validation fails" true
    (try
       ignore (Database.commit db txn);
       false
     with Invalid_argument _ -> true);
  (* Nothing from the failed transaction may be visible. *)
  Alcotest.(check int) "t1 untouched" 1 (Table.count (Database.table db "t") t1);
  Alcotest.(check int) "t2 not inserted" 0 (Table.count (Database.table db "t") t2)

let test_same_txn_delete_then_insert () =
  let db = fresh () in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t1));
  (* Delete the only copy then re-insert it: valid, since validation follows
     operation order with running counts. *)
  ignore
    (Database.run db (fun txn ->
         Database.delete txn ~table:"t" t1;
         Database.insert txn ~table:"t" t1));
  Alcotest.(check int) "net one copy" 1 (Table.count (Database.table db "t") t1)

let test_unknown_table () =
  let db = fresh () in
  let txn = Database.begin_txn db in
  Database.insert txn ~table:"nope" t1;
  Alcotest.(check bool) "unknown table rejected" true
    (try
       ignore (Database.commit db txn);
       false
     with Invalid_argument _ -> true)

let test_update_is_delete_plus_insert () =
  let db = fresh () in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t1));
  ignore
    (Database.run db (fun txn ->
         Database.update txn ~table:"t" ~old_tuple:t1 ~new_tuple:t2));
  Alcotest.(check int) "old gone" 0 (Table.count (Database.table db "t") t1);
  Alcotest.(check int) "new there" 1 (Table.count (Database.table db "t") t2);
  let record = Wal.get (Database.wal db) 1 in
  Alcotest.(check int) "two changes in record" 2 (List.length record.Wal.changes)

let test_marker () =
  let db = fresh () in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t1));
  let csn = Database.commit_marker db ~tag:"probe" in
  Alcotest.(check int) "marker consumes csn" 2 csn;
  let record = Wal.get (Database.wal db) 1 in
  Alcotest.(check (option string)) "marker tag" (Some "probe") record.Wal.marker;
  Alcotest.(check int) "no changes" 0 (List.length record.Wal.changes)

let test_wall_clock () =
  let db = Database.create ~wall_start:100.0 ~wall_tick:2.5 () in
  let _ = Database.create_table db ~name:"t" schema in
  Alcotest.(check (float 0.0)) "start" 100.0 (Database.wall_now db);
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t1));
  Alcotest.(check (float 1e-9)) "tick on commit" 102.5 (Database.wall_now db);
  Database.advance_wall db 10.0;
  Alcotest.(check (float 1e-9)) "manual advance" 112.5 (Database.wall_now db);
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Database.advance_wall: negative") (fun () ->
      Database.advance_wall db (-1.0))

let test_wal_monotone_csn () =
  let db = fresh () in
  for _ = 1 to 5 do
    ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t1))
  done;
  let wal = Database.wal db in
  Alcotest.(check int) "length" 5 (Wal.length wal);
  for i = 0 to 3 do
    if (Wal.get wal i).Wal.csn >= (Wal.get wal (i + 1)).Wal.csn then
      Alcotest.fail "CSNs must increase"
  done;
  Alcotest.(check int) "last_csn" 5 (Wal.last_csn wal)

let test_create_table_duplicate () =
  let db = fresh () in
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Database.create_table db ~name:"t" schema);
       false
     with Invalid_argument _ -> true)

(* --- History --- *)

let test_history_states () =
  let db = fresh () in
  let history = History.create db in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t1));
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t1));
  ignore (Database.run db (fun txn -> Database.delete txn ~table:"t" t1));
  let count_at t =
    Relation.count (History.state_at history ~table:"t" t) t1
  in
  Alcotest.(check int) "at origin" 0 (count_at Time.origin);
  Alcotest.(check int) "at 1" 1 (count_at 1);
  Alcotest.(check int) "at 2" 2 (count_at 2);
  Alcotest.(check int) "at 3" 1 (count_at 3);
  (* Backwards queries rebuild from scratch. *)
  Alcotest.(check int) "backwards" 1 (count_at 1);
  Alcotest.(check int) "forwards again" 1 (count_at 3)

let test_history_matches_live () =
  let db = fresh () in
  let history = History.create db in
  let rng = Prng.create ~seed:4 in
  for _ = 1 to 40 do
    ignore
      (Database.run db (fun txn ->
           let k = Prng.int rng 5 in
           let tuple = Tuple.ints [ k ] in
           if Table.count (Database.table db "t") tuple > 0 && Prng.bool rng then
             Database.delete txn ~table:"t" tuple
           else Database.insert txn ~table:"t" tuple))
  done;
  Alcotest.check H.relation "state_at now = live"
    (Table.contents (Database.table db "t"))
    (History.state_at history ~table:"t" (Database.now db))

let test_history_changes_between () =
  let db = fresh () in
  let history = History.create db in
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t1));
  ignore (Database.run db (fun txn -> Database.insert txn ~table:"t" t2));
  ignore (Database.run db (fun txn -> Database.delete txn ~table:"t" t1));
  let changes = History.changes_between history ~table:"t" ~lo:1 ~hi:3 in
  Alcotest.(check int) "two changes in (1,3]" 2 (List.length changes);
  (match changes with
  | [ (tup, c, ts); (tup', c', ts') ] ->
      Alcotest.check H.tuple "first" t2 tup;
      Alcotest.(check int) "insert" 1 c;
      Alcotest.(check int) "ts" 2 ts;
      Alcotest.check H.tuple "second" t1 tup';
      Alcotest.(check int) "delete" (-1) c';
      Alcotest.(check int) "ts'" 3 ts'
  | _ -> Alcotest.fail "unexpected shape")

let prop_history_replay =
  QCheck.Test.make ~name:"history state_at is prefix of WAL" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let db = fresh () in
      let history = History.create db in
      let rng = Prng.create ~seed in
      let reference = ref [] in
      (* Build a random history, snapshotting the table after each commit. *)
      for _ = 1 to 25 do
        ignore
          (Database.run db (fun txn ->
               let k = Prng.int rng 4 in
               let tuple = Tuple.ints [ k ] in
               if Table.count (Database.table db "t") tuple > 0 && Prng.bool rng
               then Database.delete txn ~table:"t" tuple
               else Database.insert txn ~table:"t" tuple));
        reference := Relation.copy (Table.contents (Database.table db "t")) :: !reference
      done;
      let snapshots = Array.of_list (List.rev !reference) in
      (* Query times in a scrambled order to stress the cache. *)
      let order = Array.init 25 (fun i -> i + 1) in
      Prng.shuffle rng order;
      Array.for_all
        (fun t -> Relation.equal snapshots.(t - 1) (History.state_at history ~table:"t" t))
        order)

let suite =
  [
    Alcotest.test_case "commit applies changes" `Quick test_commit_applies;
    Alcotest.test_case "txn buffers until commit" `Quick test_txn_buffering;
    Alcotest.test_case "abort discards" `Quick test_abort;
    Alcotest.test_case "run rolls back on exception" `Quick test_run_rolls_back_on_exception;
    Alcotest.test_case "over-delete rejected atomically" `Quick test_over_delete_rejected_atomically;
    Alcotest.test_case "delete then insert in one txn" `Quick test_same_txn_delete_then_insert;
    Alcotest.test_case "unknown table rejected" `Quick test_unknown_table;
    Alcotest.test_case "update = delete + insert" `Quick test_update_is_delete_plus_insert;
    Alcotest.test_case "commit markers" `Quick test_marker;
    Alcotest.test_case "simulated wall clock" `Quick test_wall_clock;
    Alcotest.test_case "WAL CSNs increase" `Quick test_wal_monotone_csn;
    Alcotest.test_case "duplicate table rejected" `Quick test_create_table_duplicate;
    Alcotest.test_case "history reconstructs states" `Quick test_history_states;
    Alcotest.test_case "history matches live state" `Quick test_history_matches_live;
    Alcotest.test_case "history changes_between" `Quick test_history_changes_between;
    qtest prop_history_replay;
  ]
