test/test_btree.ml: Alcotest Int List Map QCheck QCheck_alcotest Roll_storage Roll_util String
