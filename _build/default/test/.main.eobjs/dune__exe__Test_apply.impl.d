test/test_apply.ml: Alcotest Database List Prng QCheck QCheck_alcotest Roll_core Roll_delta Roll_relation Test_support
