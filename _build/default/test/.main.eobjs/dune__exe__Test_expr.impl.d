test/test_expr.ml: Alcotest Database Predicate Prng QCheck QCheck_alcotest Relation Roll_core Roll_delta Roll_dsl Roll_relation Roll_storage Schema Test_support Tuple Value
