test/test_controller.ml: Alcotest Database List Prng Roll_core Roll_delta Test_support
