test/test_checkpoint.ml: Alcotest Database Filename Fun Prng Roll_capture Roll_core Roll_delta Roll_storage Sys Test_support
