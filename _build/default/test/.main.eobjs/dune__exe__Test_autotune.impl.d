test/test_autotune.ml: Alcotest Database List Printf Roll_core Roll_delta Roll_workload String Test_support
