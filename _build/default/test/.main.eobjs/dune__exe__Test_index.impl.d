test/test_index.ml: Alcotest Database List Printf Prng QCheck QCheck_alcotest Relation Roll_capture Roll_core Roll_delta Roll_relation Roll_storage Roll_workload Test_support Tuple Value
