test/test_storage.ml: Alcotest Array List QCheck QCheck_alcotest Relation Roll_delta Roll_relation Roll_storage Roll_util Schema Test_support Tuple Value
