test/test_wal_codec.ml: Alcotest Database Filename Fun List Prng Roll_core Roll_relation Roll_storage Schema Sys Test_support Tuple Value
