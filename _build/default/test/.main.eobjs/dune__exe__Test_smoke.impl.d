test/test_smoke.ml: Alcotest C Database Prng Roll_delta Test_support
