test/test_aggregate.ml: Alcotest Database Hashtbl List Printf Prng QCheck QCheck_alcotest Relation Roll_core Roll_delta Roll_relation Schema Test_support Tuple Value
