test/test_geometry.ml: Alcotest List Roll_core String
