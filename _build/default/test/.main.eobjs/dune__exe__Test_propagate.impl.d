test/test_propagate.ml: Alcotest Database Prng QCheck QCheck_alcotest Roll_capture Roll_core Roll_delta Roll_relation Test_support
