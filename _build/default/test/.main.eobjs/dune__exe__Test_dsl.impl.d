test/test_dsl.ml: Alcotest Bytes Char List Predicate Printf QCheck QCheck_alcotest Relation Roll_capture Roll_core Roll_dsl Roll_relation Roll_storage Schema Tuple Value
