test/test_soak.ml: Alcotest Array Database Filename Fun Prng Roll_capture Roll_core Roll_delta Roll_relation Roll_storage Sys Test_support
