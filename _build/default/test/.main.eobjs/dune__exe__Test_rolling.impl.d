test/test_rolling.ml: Alcotest Database Option Printf Prng QCheck QCheck_alcotest Roll_core Roll_delta Roll_workload Test_support
