test/test_capture.ml: Alcotest List Roll_capture Roll_delta Roll_relation Roll_storage Schema Tuple Value
