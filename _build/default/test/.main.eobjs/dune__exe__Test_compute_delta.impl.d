test/test_compute_delta.ml: Alcotest Database List Predicate Printf Prng QCheck QCheck_alcotest Relation Roll_capture Roll_core Roll_delta Roll_relation Schema String Test_support Tuple Value
