test/test_trigger_capture.ml: Alcotest Database List Prng Relation Roll_capture Roll_delta Roll_relation Test_support Tuple
