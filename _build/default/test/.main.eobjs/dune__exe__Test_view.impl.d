test/test_view.ml: Alcotest Database Format List Predicate Roll_core Roll_relation Schema Test_support Tuple Value
