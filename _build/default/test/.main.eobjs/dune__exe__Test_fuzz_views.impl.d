test/test_fuzz_views.ml: Array Database Option Prng QCheck QCheck_alcotest Roll_core Roll_delta Test_support
