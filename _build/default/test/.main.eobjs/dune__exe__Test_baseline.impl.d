test/test_baseline.ml: Alcotest Database Prng QCheck QCheck_alcotest Relation Roll_core Roll_delta Roll_relation Test_support Tuple
