test/test_executor.ml: Alcotest Capture Database History List Predicate Prng QCheck QCheck_alcotest Relation Roll_capture Roll_core Roll_delta Roll_relation Schema String Test_support Tuple Value
