test/test_tpch.ml: Alcotest Database Roll_core Roll_delta Roll_relation Roll_workload Test_support
