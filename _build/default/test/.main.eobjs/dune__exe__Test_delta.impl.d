test/test_delta.ml: Alcotest Hashtbl List Printf QCheck QCheck_alcotest Relation Roll_delta Roll_relation Schema String Test_support Tuple Value
