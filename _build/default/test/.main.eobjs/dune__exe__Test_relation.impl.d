test/test_relation.ml: Alcotest Format List Predicate QCheck QCheck_alcotest Relation Roll_relation Schema Test_support Tuple Value
