test/test_union.ml: Alcotest Database List Predicate Prng Relation Roll_core Roll_delta Roll_relation Test_support Tuple Value
