test/test_workload.ml: Alcotest List Option Relation Roll_capture Roll_core Roll_delta Roll_relation Roll_storage Roll_util Roll_workload Tuple Value
