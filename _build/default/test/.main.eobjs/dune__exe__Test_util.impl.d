test/test_util.ml: Alcotest Array Gen List QCheck QCheck_alcotest Roll_core Roll_util String
