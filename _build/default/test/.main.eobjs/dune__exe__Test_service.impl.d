test/test_service.ml: Alcotest Database List Predicate Prng Relation Roll_core Roll_relation Test_support Value
