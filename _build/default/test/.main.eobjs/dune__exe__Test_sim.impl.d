test/test_sim.ml: Alcotest List Printf Roll_core Roll_sim Roll_util
