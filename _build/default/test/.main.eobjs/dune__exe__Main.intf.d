test/main.mli:
