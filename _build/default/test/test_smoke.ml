(* End-to-end smoke tests: the fastest way to catch semantic bugs in the
   propagation algorithms before the detailed suites run. *)

open Test_support.Helpers
module Time = Roll_delta.Time

let test_compute_delta_simple () =
  let s = two_table () in
  let rng = Prng.create ~seed:42 in
  random_txns rng s 20;
  let t0 = Time.origin in
  let t1 = Database.now s.db in
  let ctx = ctx_of s in
  (* Updates keep flowing while the delta is being computed. *)
  inject_updates (Prng.create ~seed:7) s ctx ~per_execute:2;
  C.Compute_delta.view_delta ctx ~lo:t0 ~hi:t1;
  check_ok (C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out ~lo:t0 ~hi:t1)

let test_rolling_simple () =
  let s = two_table () in
  let rng = Prng.create ~seed:1 in
  random_txns rng s 30;
  let ctx = ctx_of s in
  inject_updates (Prng.create ~seed:9) s ctx ~per_execute:2;
  let rolling = C.Rolling.create ctx ~t_initial:Time.origin in
  let target = Database.now s.db in
  C.Rolling.run_until rolling ~target ~policy:(C.Rolling.per_relation [| 3; 5 |]);
  let hwm = C.Rolling.hwm rolling in
  Alcotest.(check bool) "hwm reached target" true (hwm >= target);
  check_ok
    (C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out
       ~lo:Time.origin ~hi:hwm)

let test_rolling_three_way () =
  let s = three_table () in
  let rng = Prng.create ~seed:3 in
  random_txns rng s 25;
  let ctx = ctx_of s in
  inject_updates (Prng.create ~seed:11) s ctx ~per_execute:1;
  let rolling = C.Rolling.create ctx ~t_initial:Time.origin in
  let target = Database.now s.db in
  C.Rolling.run_until rolling ~target
    ~policy:(C.Rolling.per_relation [| 2; 4; 7 |]);
  check_ok
    (C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out
       ~lo:Time.origin ~hi:(C.Rolling.hwm rolling))

let suite =
  [
    Alcotest.test_case "compute-delta 2-way with races" `Quick
      test_compute_delta_simple;
    Alcotest.test_case "rolling 2-way with races" `Quick test_rolling_simple;
    Alcotest.test_case "rolling 3-way with races" `Quick test_rolling_three_way;
  ]

let test_rolling_deferred_two_way () =
  let s = two_table () in
  let rng = Prng.create ~seed:5 in
  random_txns rng s 30;
  let ctx = ctx_of s in
  inject_updates (Prng.create ~seed:13) s ctx ~per_execute:2;
  let rolling = C.Rolling_deferred.create ctx ~t_initial:Time.origin in
  let target = Database.now s.db in
  C.Rolling_deferred.run_until rolling ~target
    ~policy:(C.Rolling_deferred.per_relation [| 3; 7 |]);
  check_ok
    (C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out
       ~lo:Time.origin ~hi:(C.Rolling_deferred.hwm rolling))

let test_rolling_deferred_rejects_wide () =
  let s = three_table () in
  let ctx = ctx_of s in
  Alcotest.check_raises "n >= 3 rejected"
    (Invalid_argument
       "Rolling_deferred.create: the deferred compensation rule of Figure 10 \
        is only exact for views over at most two relations; use Rolling")
    (fun () -> ignore (C.Rolling_deferred.create ctx ~t_initial:Time.origin))

let suite =
  suite
  @ [
      Alcotest.test_case "deferred rolling 2-way with races" `Quick
        test_rolling_deferred_two_way;
      Alcotest.test_case "deferred rolling rejects 3-way" `Quick
        test_rolling_deferred_rejects_wide;
    ]
