(* B+-tree multimap: unit cases plus model-based property tests against a
   stdlib-Map reference, with structural invariants checked throughout. *)

module IntBtree = Roll_storage.Btree.Make (Int)
module IntMap = Map.Make (Int)
module Prng = Roll_util.Prng

let qtest = QCheck_alcotest.to_alcotest

let check_inv t =
  match IntBtree.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant: " ^ msg)

let test_basic () =
  let t = IntBtree.create () in
  Alcotest.(check bool) "empty" true (IntBtree.is_empty t);
  IntBtree.add t 5 "a";
  IntBtree.add t 3 "b";
  IntBtree.add t 5 "c";
  Alcotest.(check int) "length counts copies" 3 (IntBtree.length t);
  Alcotest.(check (list string)) "find copies" [ "c"; "a" ] (IntBtree.find t 5);
  Alcotest.(check (list string)) "find single" [ "b" ] (IntBtree.find t 3);
  Alcotest.(check (list string)) "find missing" [] (IntBtree.find t 99);
  Alcotest.(check bool) "mem" true (IntBtree.mem t 3);
  check_inv t

let test_remove () =
  let t = IntBtree.create () in
  IntBtree.add t 1 "x";
  IntBtree.add t 1 "y";
  Alcotest.(check bool) "remove one" true
    (IntBtree.remove t ~equal:String.equal 1 "x");
  Alcotest.(check (list string)) "one left" [ "y" ] (IntBtree.find t 1);
  Alcotest.(check bool) "remove missing value" false
    (IntBtree.remove t ~equal:String.equal 1 "z");
  Alcotest.(check bool) "remove last" true
    (IntBtree.remove t ~equal:String.equal 1 "y");
  Alcotest.(check bool) "now empty" true (IntBtree.is_empty t);
  Alcotest.(check bool) "remove from empty" false
    (IntBtree.remove t ~equal:String.equal 1 "y");
  check_inv t

let test_many_inserts_splits () =
  let t = IntBtree.create ~order:4 () in
  for i = 0 to 999 do
    IntBtree.add t ((i * 37) mod 1000) i
  done;
  Alcotest.(check int) "all present" 1000 (IntBtree.length t);
  check_inv t;
  (* Ordered iteration visits every key ascending. *)
  let prev = ref (-1) in
  let seen = ref 0 in
  IntBtree.iter
    (fun k _ ->
      if k < !prev then Alcotest.fail "iteration out of order";
      prev := k;
      incr seen)
    t;
  Alcotest.(check int) "iterated all" 1000 !seen

let test_range () =
  let t = IntBtree.create ~order:4 () in
  for i = 0 to 99 do
    IntBtree.add t i (i * 2)
  done;
  let collect ~lo ~hi =
    let acc = ref [] in
    IntBtree.range t ~lo ~hi (fun k _ -> acc := k :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "inclusive bounds" [ 10; 11; 12 ]
    (collect ~lo:(Some 10) ~hi:(Some 12));
  Alcotest.(check int) "open low" 11 (List.length (collect ~lo:None ~hi:(Some 10)));
  Alcotest.(check int) "open high" 10 (List.length (collect ~lo:(Some 90) ~hi:None));
  Alcotest.(check (list int)) "empty range" [] (collect ~lo:(Some 50) ~hi:(Some 49))

let test_min_max () =
  let t = IntBtree.create ~order:4 () in
  Alcotest.(check (option int)) "empty min" None (IntBtree.min_key t);
  List.iter (fun k -> IntBtree.add t k ()) [ 42; 7; 99; 13 ];
  Alcotest.(check (option int)) "min" (Some 7) (IntBtree.min_key t);
  Alcotest.(check (option int)) "max" (Some 99) (IntBtree.max_key t)

let test_order_validation () =
  Alcotest.check_raises "tiny order rejected"
    (Invalid_argument "Btree.create: order must be at least 4") (fun () ->
      ignore (IntBtree.create ~order:2 ()))

(* Model-based test: random add/remove/find against Map<int, int list>. *)
let prop_model =
  QCheck.Test.make ~name:"btree matches multimap model" ~count:60
    QCheck.(pair small_int (int_range 4 8))
    (fun (seed, order) ->
      let rng = Prng.create ~seed in
      let t = IntBtree.create ~order () in
      let model = ref IntMap.empty in
      let model_add k v =
        model := IntMap.update k (function None -> Some [ v ] | Some l -> Some (v :: l)) !model
      in
      let model_remove k v =
        match IntMap.find_opt k !model with
        | None -> false
        | Some l ->
            if List.mem v l then begin
              let removed = ref false in
              let l' =
                List.filter
                  (fun x ->
                    if (not !removed) && x = v then (removed := true; false) else true)
                  l
              in
              (model :=
                 if l' = [] then IntMap.remove k !model
                 else IntMap.add k l' !model);
              true
            end
            else false
      in
      let ok = ref true in
      for step = 1 to 400 do
        let k = Prng.int rng 40 in
        let v = Prng.int rng 5 in
        (match Prng.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 ->
            IntBtree.add t k v;
            model_add k v
        | 6 | 7 | 8 ->
            let a = IntBtree.remove t ~equal:Int.equal k v in
            let b = model_remove k v in
            if a <> b then ok := false
        | _ ->
            let got = List.sort compare (IntBtree.find t k) in
            let expected =
              List.sort compare
                (match IntMap.find_opt k !model with Some l -> l | None -> [])
            in
            if got <> expected then ok := false);
        if step mod 100 = 0 then
          match IntBtree.check_invariants t with
          | Ok () -> ()
          | Error _ -> ok := false
      done;
      let total = IntMap.fold (fun _ l acc -> acc + List.length l) !model 0 in
      !ok && IntBtree.length t = total
      && IntBtree.check_invariants t = Ok ())

let prop_iter_sorted_after_churn =
  QCheck.Test.make ~name:"iteration sorted after heavy churn" ~count:30
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      let t = IntBtree.create ~order:4 () in
      for _ = 1 to 500 do
        let k = Prng.int rng 60 in
        if Prng.bool rng then IntBtree.add t k k
        else ignore (IntBtree.remove t ~equal:Int.equal k k)
      done;
      let sorted = ref true in
      let prev = ref min_int in
      IntBtree.iter
        (fun k _ ->
          if k < !prev then sorted := false;
          prev := k)
        t;
      !sorted && IntBtree.check_invariants t = Ok ())

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basic;
    Alcotest.test_case "remove semantics" `Quick test_remove;
    Alcotest.test_case "splits under load" `Quick test_many_inserts_splits;
    Alcotest.test_case "range queries" `Quick test_range;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "order validation" `Quick test_order_validation;
    qtest prop_model;
    qtest prop_iter_sorted_after_churn;
  ]
