(* Aggregate views via summary-delta tables: COUNT/SUM/AVG maintained from
   the SPJ view delta, with point-in-time refresh, checked against a
   group-by oracle recomputed from scratch. *)

open Test_support.Helpers
open Roll_relation
module Time = Roll_delta.Time
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

(* Group the two_table view's output (k, v, w) by k, summing v and w. *)
let spec = C.Aggregate.simple ~group_by:[ 0 ] ~sums:[ 1; 2 ]

let oracle_groups s t =
  let view_state = C.Oracle.view_at s.history s.view t in
  let groups = Hashtbl.create 8 in
  Relation.iter
    (fun tuple c ->
      let key = Tuple.project tuple [ 0 ] in
      let v = match Tuple.get tuple 1 with Value.Int v -> v | _ -> 0 in
      let w = match Tuple.get tuple 2 with Value.Int w -> w | _ -> 0 in
      let count, sv, sw =
        match Hashtbl.find_opt groups key with
        | Some x -> x
        | None -> (0, 0, 0)
      in
      Hashtbl.replace groups key (count + c, sv + (c * v), sw + (c * w)))
    view_state;
  Hashtbl.fold
    (fun key (c, sv, sw) acc -> if c <> 0 then (key, (c, sv, sw)) :: acc else acc)
    groups []

let groups_result s agg t =
  let problems = ref [] in
  List.iter
    (fun (key, (c, sv, sw)) ->
      if C.Aggregate.group_count agg key <> c then
        problems := Printf.sprintf "count mismatch for %s at t=%d" (Tuple.to_string key) t :: !problems;
      if C.Aggregate.group_sum agg key 0 <> sv then
        problems := Printf.sprintf "sum v mismatch for %s at t=%d" (Tuple.to_string key) t :: !problems;
      if C.Aggregate.group_sum agg key 1 <> sw then
        problems := Printf.sprintf "sum w mismatch for %s at t=%d" (Tuple.to_string key) t :: !problems)
    (oracle_groups s t);
  let expected = List.length (oracle_groups s t) in
  let got = Relation.distinct_count (C.Aggregate.contents agg) in
  if expected <> got then
    problems := Printf.sprintf "group count %d, expected %d at t=%d" got expected t :: !problems;
  match !problems with [] -> Ok () | p :: _ -> Error p

let check_against_oracle s agg t =
  match groups_result s agg t with Ok () -> () | Error msg -> Alcotest.fail msg

let propagated seed =
  let s = two_table () in
  random_txns (Prng.create ~seed) s 35;
  let target = Database.now s.db in
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  C.Propagate.run_until p ~target ~interval:5;
  (s, ctx, target)

let test_aggregate_rolls () =
  let s, ctx, target = propagated 110 in
  let agg = C.Aggregate.create ctx spec ~t_initial:Time.origin in
  let t = ref 0 in
  while !t < target do
    t := min target (!t + 4);
    C.Aggregate.roll_to agg ~hwm:target !t;
    check_against_oracle s agg !t
  done

let prop_aggregate_matches_oracle =
  QCheck.Test.make ~name:"aggregate matches group-by oracle" ~count:15
    QCheck.small_int
    (fun seed ->
      let s, ctx, target = propagated seed in
      let agg = C.Aggregate.create ctx spec ~t_initial:Time.origin in
      C.Aggregate.roll_to agg ~hwm:target target;
      match groups_result s agg target with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let test_average () =
  let s = two_table () in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 10 ]);
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 20 ]);
         Database.insert txn ~table:"s" (Tuple.ints [ 1; 5 ])));
  let target = Database.now s.db in
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  C.Propagate.run_until p ~target ~interval:5;
  let agg = C.Aggregate.create ctx spec ~t_initial:Time.origin in
  C.Aggregate.roll_to agg ~hwm:target target;
  let key = Tuple.ints [ 1 ] in
  Alcotest.(check int) "count" 2 (C.Aggregate.group_count agg key);
  Alcotest.(check (option (float 1e-9))) "avg v" (Some 15.0) (C.Aggregate.average agg key 0);
  Alcotest.(check (option (float 1e-9))) "avg missing group" None
    (C.Aggregate.average agg (Tuple.ints [ 99 ]) 0)

let test_groups_vanish () =
  let s = two_table () in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"r" (Tuple.ints [ 3; 1 ]);
         Database.insert txn ~table:"s" (Tuple.ints [ 3; 2 ])));
  ignore
    (Database.run s.db (fun txn -> Database.delete txn ~table:"r" (Tuple.ints [ 3; 1 ])));
  let target = Database.now s.db in
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  C.Propagate.run_until p ~target ~interval:5;
  let agg = C.Aggregate.create ctx spec ~t_initial:Time.origin in
  C.Aggregate.roll_to agg ~hwm:target 1;
  Alcotest.(check int) "group exists mid-way" 1
    (C.Aggregate.group_count agg (Tuple.ints [ 3 ]));
  C.Aggregate.roll_to agg ~hwm:target target;
  Alcotest.(check int) "group removed" 0
    (C.Aggregate.group_count agg (Tuple.ints [ 3 ]));
  Alcotest.(check bool) "contents empty" true
    (Relation.is_empty (C.Aggregate.contents agg))

let test_output_schema () =
  let s = two_table () in
  let ctx = ctx_of s in
  let agg = C.Aggregate.create ctx spec ~t_initial:Time.origin in
  let schema = C.Aggregate.output_schema agg in
  Alcotest.(check int) "arity: key + count + 2 sums" 4 (Schema.arity schema);
  Alcotest.(check string) "count col" "count" (Schema.column schema 1).Schema.name

let test_spec_validation () =
  let s = two_table () in
  let ctx = ctx_of s in
  Alcotest.(check bool) "column out of range" true
    (try
       ignore
         (C.Aggregate.create ctx
            (C.Aggregate.simple ~group_by:[ 9 ] ~sums:[])
            ~t_initial:Time.origin);
       false
     with Invalid_argument _ -> true)

let test_roll_guards () =
  let _, ctx, target = propagated 111 in
  let agg = C.Aggregate.create ctx spec ~t_initial:Time.origin in
  C.Aggregate.roll_to agg ~hwm:target target;
  Alcotest.(check bool) "behind rejected" true
    (try
       C.Aggregate.roll_to agg ~hwm:target 1;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "beyond hwm rejected" true
    (try
       C.Aggregate.roll_to agg ~hwm:target (target + 1);
       false
     with Invalid_argument _ -> true)

(* MIN/MAX maintenance under deletions: the multiset makes it exact. *)
let test_min_max () =
  let s = two_table () in
  let insert k v w =
    ignore
      (Database.run s.db (fun txn ->
           Database.insert txn ~table:"r" (Tuple.ints [ k; v ]);
           Database.insert txn ~table:"s" (Tuple.ints [ k; w ])))
  in
  insert 1 10 5;
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"r" (Tuple.ints [ 1; 3 ])));
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"r" (Tuple.ints [ 1; 99 ])));
  (* Delete the current minimum v=3: MIN must recover to 10, not stick. *)
  ignore (Database.run s.db (fun txn -> Database.delete txn ~table:"r" (Tuple.ints [ 1; 3 ])));
  let target = Database.now s.db in
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  C.Propagate.run_until p ~target ~interval:5;
  let agg =
    C.Aggregate.create ctx
      { C.Aggregate.group_by = [ 0 ]; sums = []; mins = [ 1 ]; maxs = [ 1 ] }
      ~t_initial:Time.origin
  in
  let key = Tuple.ints [ 1 ] in
  (* Walk through time: before the deletion min is 3, after it is 10. *)
  C.Aggregate.roll_to agg ~hwm:target 3;
  Alcotest.(check (option (of_pp Value.pp))) "min is 3 before deletion"
    (Some (Value.Int 3)) (C.Aggregate.group_min agg key 0);
  C.Aggregate.roll_to agg ~hwm:target target;
  Alcotest.(check (option (of_pp Value.pp))) "min recovers after deletion"
    (Some (Value.Int 10)) (C.Aggregate.group_min agg key 0);
  Alcotest.(check (option (of_pp Value.pp))) "max" (Some (Value.Int 99))
    (C.Aggregate.group_max agg key 0);
  Alcotest.(check (option (of_pp Value.pp))) "absent group" None
    (C.Aggregate.group_min agg (Tuple.ints [ 42 ]) 0)

(* MIN/MAX match a scan oracle on random streams. *)
let prop_min_max_oracle =
  QCheck.Test.make ~name:"min/max match scan oracle" ~count:12 QCheck.small_int
    (fun seed ->
      let s, ctx, target = propagated seed in
      let agg =
        C.Aggregate.create ctx
          { C.Aggregate.group_by = [ 0 ]; sums = []; mins = [ 2 ]; maxs = [ 2 ] }
          ~t_initial:Time.origin
      in
      C.Aggregate.roll_to agg ~hwm:target target;
      let view_state = C.Oracle.view_at s.history s.view target in
      let mins = Hashtbl.create 8 and maxs = Hashtbl.create 8 in
      Relation.iter
        (fun tuple _ ->
          let k = Tuple.project tuple [ 0 ] in
          let w = Tuple.get tuple 2 in
          (match Hashtbl.find_opt mins k with
          | Some m when Value.compare m w <= 0 -> ()
          | _ -> Hashtbl.replace mins k w);
          match Hashtbl.find_opt maxs k with
          | Some m when Value.compare m w >= 0 -> ()
          | _ -> Hashtbl.replace maxs k w)
        view_state;
      Hashtbl.fold
        (fun k m acc ->
          acc
          && C.Aggregate.group_min agg k 0 = Some m
          && C.Aggregate.group_max agg k 0 = Some (Hashtbl.find maxs k))
        mins true)

let suite =
  [
    Alcotest.test_case "aggregate rolls with the delta" `Quick test_aggregate_rolls;
    Alcotest.test_case "min/max with deletions" `Quick test_min_max;
    qtest prop_min_max_oracle;
    qtest prop_aggregate_matches_oracle;
    Alcotest.test_case "averages" `Quick test_average;
    Alcotest.test_case "empty groups vanish" `Quick test_groups_vanish;
    Alcotest.test_case "output schema" `Quick test_output_schema;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "roll guards" `Quick test_roll_guards;
  ]
