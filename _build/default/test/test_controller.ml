(* Controller (Figure 11 architecture) tests: end-to-end refresh flows,
   wall-clock point-in-time refresh, algorithm variants, and GC. *)

open Test_support.Helpers
module Time = Roll_delta.Time
module C = Roll_core

let algorithms =
  [
    ("uniform", C.Controller.Uniform 4);
    ("rolling", C.Controller.Rolling (C.Rolling.per_relation [| 3; 6 |]));
    ("deferred", C.Controller.Deferred (C.Rolling_deferred.per_relation [| 3; 6 |]));
  ]

let test_refresh_latest name algorithm () =
  let s = two_table () in
  random_txns (Prng.create ~seed:90) s 20;
  let controller = C.Controller.create s.db s.capture s.view ~algorithm in
  random_txns (Prng.create ~seed:91) s 20;
  let t = C.Controller.refresh_latest controller in
  Alcotest.(check int) (name ^ ": as_of") t (C.Controller.as_of controller);
  Alcotest.check relation
    (name ^ ": contents")
    (C.Oracle.view_at s.history s.view t)
    (C.Controller.contents controller)

let test_point_in_time () =
  let s = two_table () in
  random_txns (Prng.create ~seed:92) s 10;
  let controller =
    C.Controller.create s.db s.capture s.view
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 5))
  in
  random_txns (Prng.create ~seed:93) s 30;
  let t_mid = C.Controller.as_of controller + 12 in
  C.Controller.refresh_to controller t_mid;
  Alcotest.check relation "mid state"
    (C.Oracle.view_at s.history s.view t_mid)
    (C.Controller.contents controller);
  (* The 8pm-decides-to-refresh-to-5pm scenario: more updates have happened
     since, but we can still land exactly on an intermediate state. *)
  random_txns (Prng.create ~seed:94) s 10;
  let t_later = t_mid + 8 in
  C.Controller.refresh_to controller t_later;
  Alcotest.check relation "later state"
    (C.Oracle.view_at s.history s.view t_later)
    (C.Controller.contents controller)

let test_refresh_to_wall () =
  let s = two_table () in
  random_txns (Prng.create ~seed:95) s 10;
  let controller =
    C.Controller.create s.db s.capture s.view ~algorithm:(C.Controller.Uniform 5)
  in
  random_txns (Prng.create ~seed:96) s 20;
  (* Wall clock ticks 1.0 per commit; pick a wall instant strictly in the
     past and check that we land on the last relevant commit before it. *)
  let wall_target = Database.wall_now s.db -. 5.5 in
  let t = C.Controller.refresh_to_wall controller wall_target in
  Alcotest.(check bool) "resolved time in range" true
    (t >= C.Controller.as_of controller - 1 && t <= Database.now s.db);
  Alcotest.check relation "wall state"
    (C.Oracle.view_at s.history s.view t)
    (C.Controller.contents controller)

let test_propagate_step_and_hwm () =
  let s = two_table () in
  let controller =
    C.Controller.create s.db s.capture s.view ~algorithm:(C.Controller.Uniform 3)
  in
  random_txns (Prng.create ~seed:97) s 12;
  let h0 = C.Controller.hwm controller in
  Alcotest.(check bool) "step advances" true (C.Controller.propagate_step controller);
  Alcotest.(check bool) "hwm advanced" true (C.Controller.hwm controller > h0);
  (* Drain to idle. *)
  let rec drain n =
    if n > 100 then Alcotest.fail "never idle";
    if C.Controller.propagate_step controller then drain (n + 1)
  in
  drain 0

let test_gc () =
  let s = two_table () in
  let controller =
    C.Controller.create s.db s.capture s.view ~algorithm:(C.Controller.Uniform 4)
  in
  random_txns (Prng.create ~seed:98) s 25;
  ignore (C.Controller.refresh_latest controller);
  let removed = C.Controller.gc controller in
  Alcotest.(check bool) "applied rows pruned" true (removed > 0);
  (* Still works after GC. *)
  random_txns (Prng.create ~seed:99) s 10;
  let t = C.Controller.refresh_latest controller in
  Alcotest.check relation "post-GC refresh"
    (C.Oracle.view_at s.history s.view t)
    (C.Controller.contents controller)

let test_stats_exposed () =
  let s = two_table () in
  let controller =
    C.Controller.create s.db s.capture s.view ~algorithm:(C.Controller.Uniform 4)
  in
  random_txns (Prng.create ~seed:100) s 10;
  ignore (C.Controller.refresh_latest controller);
  Alcotest.(check bool) "queries counted" true
    (C.Stats.queries (C.Controller.stats controller) > 0)

let test_geometry_option () =
  let s = two_table () in
  let controller =
    C.Controller.create ~geometry:true s.db s.capture s.view
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 3))
  in
  random_txns (Prng.create ~seed:101) s 15;
  ignore (C.Controller.refresh_latest controller);
  match (C.Controller.ctx controller).C.Ctx.geometry with
  | Some g -> (
      match C.Geometry.check g ~hwm:(C.Controller.hwm controller) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
  | None -> Alcotest.fail "geometry trace missing"

let test_three_way_controller () =
  let s = three_table () in
  random_txns (Prng.create ~seed:102) s 15;
  let controller =
    C.Controller.create s.db s.capture s.view
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 2; 5; 9 |]))
  in
  random_txns (Prng.create ~seed:103) s 25;
  let t = C.Controller.refresh_latest controller in
  Alcotest.check relation "3-way refresh"
    (C.Oracle.view_at s.history s.view t)
    (C.Controller.contents controller)

let suite =
  List.map
    (fun (name, algorithm) ->
      Alcotest.test_case
        ("refresh_latest / " ^ name)
        `Quick
        (test_refresh_latest name algorithm))
    algorithms
  @ [
      Alcotest.test_case "point-in-time refresh" `Quick test_point_in_time;
      Alcotest.test_case "refresh to wall time" `Quick test_refresh_to_wall;
      Alcotest.test_case "propagate_step and hwm" `Quick test_propagate_step_and_hwm;
      Alcotest.test_case "gc applied delta rows" `Quick test_gc;
      Alcotest.test_case "stats exposed" `Quick test_stats_exposed;
      Alcotest.test_case "geometry option" `Quick test_geometry_option;
      Alcotest.test_case "three-way controller" `Quick test_three_way_controller;
    ]

let test_adaptive_algorithm () =
  let s = three_table () in
  random_txns (Prng.create ~seed:104) s 20;
  let controller =
    C.Controller.create s.db s.capture s.view ~algorithm:(C.Controller.Adaptive 40)
  in
  random_txns (Prng.create ~seed:105) s 30;
  let t = C.Controller.refresh_latest controller in
  Alcotest.check relation "adaptive refresh = oracle"
    (C.Oracle.view_at s.history s.view t)
    (C.Controller.contents controller)

let suite =
  suite
  @ [ Alcotest.test_case "adaptive algorithm" `Quick test_adaptive_algorithm ]
