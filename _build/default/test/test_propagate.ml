(* Propagate (Figure 5) tests: Theorem 4.2, interval behaviour, idling,
   and capture-lag interaction. *)

open Test_support.Helpers
module Time = Roll_delta.Time
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

let prop_theorem_4_2 =
  QCheck.Test.make ~name:"theorem 4.2: Propagate prefix is a timed delta"
    ~count:25
    QCheck.(triple small_int (int_range 1 10) (int_range 0 3))
    (fun (seed, interval, burst) ->
      let s = if seed mod 2 = 0 then two_table () else three_table () in
      random_txns (Prng.create ~seed) s 25;
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 99)) s ctx ~per_execute:burst;
      let p = C.Propagate.create ctx ~t_initial:Time.origin in
      (* A few steps; the delta must be valid after each one. *)
      let ok = ref true in
      for _ = 1 to 6 do
        (match C.Propagate.step p ~interval with `Advanced _ | `Idle -> ());
        let hwm = C.Propagate.hwm p in
        match
          C.Oracle.check_timed_view_delta_sampled
            ~sample:(fun t -> t mod 3 = 0)
            s.history s.view ctx.C.Ctx.out ~lo:Time.origin ~hi:hwm
        with
        | Ok () -> ()
        | Error msg ->
            ok := false;
            print_endline msg
      done;
      !ok)

let test_step_clamps_to_now () =
  let s = two_table () in
  random_txns (Prng.create ~seed:50) s 5;
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  (match C.Propagate.step p ~interval:1000 with
  | `Advanced t -> Alcotest.(check int) "clamped to creation-time now" 5 t
  | `Idle -> Alcotest.fail "should advance");
  ()

let test_idle_when_caught_up () =
  let s = two_table () in
  random_txns (Prng.create ~seed:51) s 5;
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  (* Each step consumes CSNs (markers), so "now" recedes; run until idle. *)
  let rec drain n =
    if n > 100 then Alcotest.fail "never idled";
    match C.Propagate.step p ~interval:50 with
    | `Advanced _ -> drain (n + 1)
    | `Idle -> ()
  in
  drain 0;
  Alcotest.(check bool) "hwm reached now" true (C.Propagate.hwm p >= 5)

let test_bad_interval () =
  let s = two_table () in
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Propagate.step: interval must be positive") (fun () ->
      ignore (C.Propagate.step p ~interval:0))

let test_run_until_future_rejected () =
  let s = two_table () in
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  Alcotest.check_raises "future target"
    (Invalid_argument "Propagate.run_until: target in the future") (fun () ->
      C.Propagate.run_until p ~target:(Database.now s.db + 10) ~interval:2)

(* The interval is a pure tuning knob: interval=1 and interval=big yield
   equivalent deltas (same net effect at every prefix). *)
let test_interval_independence () =
  let run interval =
    let s = two_table () in
    random_txns (Prng.create ~seed:52) s 30;
    let target = Database.now s.db in
    let ctx = ctx_of s in
    let p = C.Propagate.create ctx ~t_initial:Time.origin in
    C.Propagate.run_until p ~target ~interval;
    (s, ctx, target)
  in
  let _, ctx1, target = run 1 in
  let _, ctx2, _ = run 1000 in
  for t = 1 to target do
    let a = Roll_delta.Delta.net_effect ctx1.C.Ctx.out ~lo:0 ~hi:t in
    let b = Roll_delta.Delta.net_effect ctx2.C.Ctx.out ~lo:0 ~hi:t in
    if not (Roll_relation.Relation.equal a b) then
      Alcotest.failf "prefix %d differs between interval=1 and interval=1000" t
  done

(* Small intervals mean more, smaller queries: the tuning trade-off the
   paper describes (Section 3.3). *)
let test_interval_query_tradeoff () =
  let queries_with interval =
    let s = two_table () in
    random_txns (Prng.create ~seed:53) s 40;
    let ctx = ctx_of s in
    let p = C.Propagate.create ctx ~t_initial:Time.origin in
    C.Propagate.run_until p ~target:(Database.now s.db) ~interval;
    C.Stats.queries ctx.C.Ctx.stats
  in
  let small = queries_with 2 in
  let large = queries_with 40 in
  Alcotest.(check bool) "small intervals issue more queries" true (small > large)

let test_capture_lag_blocks_nothing_lost () =
  let s = two_table () in
  random_txns (Prng.create ~seed:54) s 20;
  let ctx = ctx_of s in
  (* Manual capture control: the driver advances capture itself before
     every propagation query (compensation windows reach each query's own
     execution time, so capture must keep up — exactly the paper's
     "propagate waits for DPropR" protocol). *)
  ctx.C.Ctx.auto_capture <- false;
  ctx.C.Ctx.on_execute <- (fun () -> Roll_capture.Capture.advance s.capture);
  Roll_capture.Capture.advance s.capture;
  let target = Roll_capture.Capture.hwm s.capture in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  C.Propagate.run_until p ~target ~interval:5;
  check_ok
    (C.Oracle.check_timed_view_delta s.history s.view ctx.C.Ctx.out
       ~lo:Time.origin ~hi:target)

let suite =
  [
    qtest prop_theorem_4_2;
    Alcotest.test_case "step clamps to current time" `Quick test_step_clamps_to_now;
    Alcotest.test_case "idles when caught up" `Quick test_idle_when_caught_up;
    Alcotest.test_case "rejects non-positive interval" `Quick test_bad_interval;
    Alcotest.test_case "rejects future target" `Quick test_run_until_future_rejected;
    Alcotest.test_case "interval-independent results" `Quick test_interval_independence;
    Alcotest.test_case "interval tunes query count" `Quick test_interval_query_tradeoff;
    Alcotest.test_case "works under manual capture" `Quick test_capture_lag_blocks_nothing_lost;
  ]
