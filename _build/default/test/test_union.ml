(* Union views: multiset union of SPJ blocks, each rolled by its own
   rolling process, checked against the union of oracle states. *)

open Test_support.Helpers
open Roll_relation
module Time = Roll_delta.Time
module C = Roll_core

(* Two blocks over the same pair of tables: low-keyed joins and high-keyed
   joins; their union is the full join filtered to k < 3 or k >= 5. *)
let union_scenario () =
  let s = two_table () in
  let b = C.View.binder s.db [ ("r", "r"); ("s", "s") ] in
  let block cmp_op bound name =
    C.View.create s.db ~name
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:
        [
          Predicate.join (b "r" "k") (b "s" "k");
          Predicate.cmp cmp_op (Predicate.Col (b "r" "k")) (Predicate.Const (Value.Int bound));
        ]
      ~project:[ b "r" "k"; b "r" "v"; b "s" "w" ]
  in
  (s, [ block Predicate.Lt 3 "low"; block Predicate.Ge 5 "high" ])

let oracle_union s views t =
  List.fold_left
    (fun acc v -> Relation.union acc (C.Oracle.view_at s.history v t))
    (Relation.create (C.View.output_schema (List.hd views)))
    views

let test_union_end_to_end () =
  let s, views = union_scenario () in
  let u =
    C.Union_view.create s.db s.capture ~views
      ~policies:[ C.Rolling.uniform 3; C.Rolling.uniform 7 ]
      ~t_initial:Time.origin
  in
  random_txns (Prng.create ~seed:121) s 40;
  let target = Database.now s.db in
  C.Union_view.propagate_until u target;
  Alcotest.(check bool) "hwm covers target" true (C.Union_view.hwm u >= target);
  (* Roll through intermediate points. *)
  let t = ref 0 in
  while !t < target do
    t := min target (!t + 6);
    C.Union_view.roll_to u !t;
    if not (Relation.equal (oracle_union s views !t) (C.Union_view.contents u)) then
      Alcotest.failf "union state wrong at t=%d" !t
  done

let test_union_validation () =
  let s, views = union_scenario () in
  Alcotest.(check bool) "policy count mismatch" true
    (try
       ignore
         (C.Union_view.create s.db s.capture ~views
            ~policies:[ C.Rolling.uniform 3 ]
            ~t_initial:Time.origin);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "no blocks" true
    (try
       ignore
         (C.Union_view.create s.db s.capture ~views:[] ~policies:[]
            ~t_initial:Time.origin);
       false
     with Invalid_argument _ -> true)

let test_union_schema_mismatch () =
  let s = two_table () in
  let b = C.View.binder s.db [ ("r", "r"); ("s", "s") ] in
  let v1 =
    C.View.create s.db ~name:"a"
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:[ Predicate.join (b "r" "k") (b "s" "k") ]
      ~project:[ b "r" "k" ]
  in
  let v2 =
    C.View.create s.db ~name:"b"
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:[ Predicate.join (b "r" "k") (b "s" "k") ]
      ~project:[ b "s" "w" ]
  in
  Alcotest.(check bool) "schema mismatch rejected" true
    (try
       ignore
         (C.Union_view.create s.db s.capture ~views:[ v1; v2 ]
            ~policies:[ C.Rolling.uniform 2; C.Rolling.uniform 2 ]
            ~t_initial:Time.origin);
       false
     with Invalid_argument _ -> true)

let test_union_roll_guards () =
  let s, views = union_scenario () in
  let u =
    C.Union_view.create s.db s.capture ~views
      ~policies:[ C.Rolling.uniform 3; C.Rolling.uniform 3 ]
      ~t_initial:Time.origin
  in
  random_txns (Prng.create ~seed:122) s 10;
  Alcotest.(check bool) "beyond hwm rejected" true
    (try
       C.Union_view.roll_to u (Database.now s.db);
       false
     with Invalid_argument _ -> true)

let test_overlapping_blocks_double_count () =
  (* Union is multiset: overlapping blocks count rows twice — by design. *)
  let s = two_table () in
  let b = C.View.binder s.db [ ("r", "r"); ("s", "s") ] in
  let block name =
    C.View.create s.db ~name
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:[ Predicate.join (b "r" "k") (b "s" "k") ]
      ~project:[ b "r" "k" ]
  in
  let u =
    C.Union_view.create s.db s.capture ~views:[ block "x"; block "y" ]
      ~policies:[ C.Rolling.uniform 4; C.Rolling.uniform 4 ]
      ~t_initial:Time.origin
  in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 0 ]);
         Database.insert txn ~table:"s" (Tuple.ints [ 1; 0 ])));
  let target = Database.now s.db in
  C.Union_view.propagate_until u target;
  C.Union_view.roll_to u target;
  Alcotest.(check int) "count doubled" 2
    (Relation.count (C.Union_view.contents u) (Tuple.ints [ 1 ]))

let suite =
  [
    Alcotest.test_case "union end-to-end with point-in-time" `Quick test_union_end_to_end;
    Alcotest.test_case "union validation" `Quick test_union_validation;
    Alcotest.test_case "union schema mismatch" `Quick test_union_schema_mismatch;
    Alcotest.test_case "union roll guards" `Quick test_union_roll_guards;
    Alcotest.test_case "overlapping blocks multiset union" `Quick
      test_overlapping_blocks_double_count;
  ]
