(* Apply-process tests: point-in-time refresh (Figure 3), roll-back,
   pruning, and equivalence between stepwise and single rolls. *)

open Test_support.Helpers
module Time = Roll_delta.Time
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

(* Common setup: random history, fully propagated delta. *)
let propagated ?(seed = 70) ?(txns = 30) () =
  let s = two_table () in
  random_txns (Prng.create ~seed) s txns;
  let target = Database.now s.db in
  let ctx = ctx_of s in
  let p = C.Propagate.create ctx ~t_initial:Time.origin in
  C.Propagate.run_until p ~target ~interval:5;
  (s, ctx, target)

let test_roll_matches_oracle_at_every_time () =
  let s, ctx, target = propagated () in
  let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
  for t = 1 to target do
    C.Apply.roll_to apply ~hwm:target t;
    Alcotest.(check int) "as_of tracks" t (C.Apply.as_of apply);
    let expected = C.Oracle.view_at s.history s.view t in
    if not (Roll_relation.Relation.equal expected (C.Apply.contents apply)) then
      Alcotest.failf "view state wrong at t=%d" t
  done

let test_one_shot_equals_stepwise () =
  let _, ctx, target = propagated ~seed:71 () in
  let stepwise = C.Apply.create_empty ctx ~t_initial:Time.origin in
  let rec roll t = if t <= target then (C.Apply.roll_to stepwise ~hwm:target t; roll (t + 3)) in
  roll 1;
  C.Apply.roll_to stepwise ~hwm:target target;
  let oneshot = C.Apply.create_empty ctx ~t_initial:Time.origin in
  C.Apply.roll_to oneshot ~hwm:target target;
  Alcotest.check relation "same final state" (C.Apply.contents oneshot)
    (C.Apply.contents stepwise)

let test_roll_back () =
  let s, ctx, target = propagated ~seed:72 () in
  let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
  C.Apply.roll_to apply ~hwm:target target;
  let mid = target / 2 in
  C.Apply.roll_back_to apply mid;
  Alcotest.(check int) "as_of back" mid (C.Apply.as_of apply);
  Alcotest.check relation "state at mid" (C.Oracle.view_at s.history s.view mid)
    (C.Apply.contents apply);
  (* And forward again. *)
  C.Apply.roll_to apply ~hwm:target target;
  Alcotest.check relation "state at target"
    (C.Oracle.view_at s.history s.view target)
    (C.Apply.contents apply)

let test_roll_guards () =
  let _, ctx, target = propagated ~seed:73 () in
  let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
  C.Apply.roll_to apply ~hwm:target (target / 2);
  Alcotest.(check bool) "backwards roll_to rejected" true
    (try
       C.Apply.roll_to apply ~hwm:target 1;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "beyond hwm rejected" true
    (try
       C.Apply.roll_to apply ~hwm:target (target + 5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "roll_back_to ahead rejected" true
    (try
       C.Apply.roll_back_to apply (target + 1);
       false
     with Invalid_argument _ -> true)

let test_prune_applied () =
  let s, ctx, target = propagated ~seed:74 () in
  let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
  let mid = target / 2 in
  C.Apply.roll_to apply ~hwm:target mid;
  let removed = C.Apply.prune_applied apply in
  Alcotest.(check bool) "something pruned" true (removed > 0);
  (* Rolling forward after pruning still works and agrees with the oracle. *)
  C.Apply.roll_to apply ~hwm:target target;
  Alcotest.check relation "state after prune+roll"
    (C.Oracle.view_at s.history s.view target)
    (C.Apply.contents apply)

let test_create_materialized () =
  let s = two_table () in
  random_txns (Prng.create ~seed:75) s 20;
  let ctx = ctx_of s in
  let apply = C.Apply.create_materialized ctx in
  Alcotest.(check int) "as_of = now" (Database.now s.db) (C.Apply.as_of apply);
  Alcotest.check relation "contents = oracle"
    (C.Oracle.view_at s.history s.view (C.Apply.as_of apply))
    (C.Apply.contents apply)

(* Materialize mid-stream, keep updating, then roll forward from the
   materialization point. *)
let test_materialize_then_roll () =
  let s = two_table () in
  random_txns (Prng.create ~seed:76) s 15;
  let ctx = ctx_of s in
  let apply = C.Apply.create_materialized ctx in
  let t_mat = C.Apply.as_of apply in
  random_txns (Prng.create ~seed:77) s 15;
  let target = Database.now s.db in
  let p = C.Propagate.create ctx ~t_initial:t_mat in
  C.Propagate.run_until p ~target ~interval:4;
  C.Apply.roll_to apply ~hwm:(C.Propagate.hwm p) target;
  Alcotest.check relation "rolled from materialization"
    (C.Oracle.view_at s.history s.view target)
    (C.Apply.contents apply)

(* Ignoring rows beyond the high-water mark (Figure 3): partially-computed
   changes past the hwm must not leak into the applied state. *)
let prop_partial_delta_isolation =
  QCheck.Test.make ~name:"rows beyond hwm never applied" ~count:20
    QCheck.small_int
    (fun seed ->
      let s = two_table () in
      random_txns (Prng.create ~seed) s 30;
      let ctx = ctx_of s in
      inject_updates (Prng.create ~seed:(seed + 13)) s ctx ~per_execute:2;
      let r = C.Rolling.create ctx ~t_initial:Time.origin in
      (* Stop mid-flight: hwm < now, delta contains rows beyond hwm. *)
      for _ = 1 to 5 do
        match C.Rolling.step r ~policy:(C.Rolling.per_relation [| 3; 8 |]) with
        | `Advanced _ | `Idle -> ()
      done;
      let hwm = C.Rolling.hwm r in
      let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
      if hwm > Time.origin then begin
        C.Apply.roll_to apply ~hwm hwm;
        Roll_relation.Relation.equal
          (C.Oracle.view_at s.history s.view hwm)
          (C.Apply.contents apply)
      end
      else true)

let suite =
  [
    Alcotest.test_case "roll matches oracle at every time" `Quick
      test_roll_matches_oracle_at_every_time;
    Alcotest.test_case "one-shot equals stepwise" `Quick test_one_shot_equals_stepwise;
    Alcotest.test_case "roll back (extension)" `Quick test_roll_back;
    Alcotest.test_case "roll guards" `Quick test_roll_guards;
    Alcotest.test_case "prune applied rows" `Quick test_prune_applied;
    Alcotest.test_case "create materialized" `Quick test_create_materialized;
    Alcotest.test_case "materialize mid-stream then roll" `Quick test_materialize_then_roll;
    qtest prop_partial_delta_isolation;
  ]

let test_view_at_snapshots () =
  let s, ctx, target = propagated ~seed:78 () in
  let apply = C.Apply.create_empty ctx ~t_initial:Time.origin in
  let mid = target / 2 in
  C.Apply.roll_to apply ~hwm:target mid;
  (* Snapshots forward and backward of as_of, without moving the view. *)
  List.iter
    (fun t ->
      let snap = C.Apply.view_at apply ~hwm:target t in
      if not (Roll_relation.Relation.equal (C.Oracle.view_at s.history s.view t) snap)
      then Alcotest.failf "snapshot wrong at t=%d" t)
    [ 0; mid / 2; mid; mid + ((target - mid) / 2); target ];
  Alcotest.(check int) "as_of untouched" mid (C.Apply.as_of apply);
  Alcotest.(check bool) "beyond hwm rejected" true
    (try
       ignore (C.Apply.view_at apply ~hwm:target (target + 1));
       false
     with Invalid_argument _ -> true)

let suite =
  suite @ [ Alcotest.test_case "view_at snapshots" `Quick test_view_at_snapshots ]
