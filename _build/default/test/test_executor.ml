(* Join-executor tests: the planner-based evaluator against the
   nested-loop oracle, timestamp/count semantics, NULL keys, self-joins,
   cartesian products, theta joins, and window guards. *)

open Test_support.Helpers
open Roll_relation
module Time = Roll_delta.Time
module C = Roll_core

let qtest = QCheck_alcotest.to_alcotest

(* Evaluate the all-base query and compare with the oracle's view_at. *)
let check_against_oracle s =
  let ctx = ctx_of s in
  let rows, _ = C.Executor.evaluate ctx (C.Pquery.all_base (C.View.n_sources s.view)) in
  let got = Relation.create (C.View.output_schema s.view) in
  List.iter (fun (tuple, count, _) -> Relation.add got tuple count) rows;
  let expected = C.Oracle.view_at s.history s.view (Database.now s.db) in
  Alcotest.check relation "executor = oracle" expected got

let test_vs_oracle_two_table () =
  let s = two_table () in
  random_txns (Prng.create ~seed:21) s 60;
  check_against_oracle s

let test_vs_oracle_three_table () =
  let s = three_table () in
  random_txns (Prng.create ~seed:22) s 60;
  check_against_oracle s

let prop_executor_matches_oracle =
  QCheck.Test.make ~name:"executor matches nested-loop oracle" ~count:40
    QCheck.small_int
    (fun seed ->
      let s = if seed mod 2 = 0 then two_table () else three_table () in
      random_txns (Prng.create ~seed) s 40;
      let ctx = ctx_of s in
      let rows, _ =
        C.Executor.evaluate ctx (C.Pquery.all_base (C.View.n_sources s.view))
      in
      let got = Relation.create (C.View.output_schema s.view) in
      List.iter (fun (tuple, count, _) -> Relation.add got tuple count) rows;
      Relation.equal got (C.Oracle.view_at s.history s.view (Database.now s.db)))

let int_col name = { Schema.name; ty = Value.T_int }

(* A view with no join atoms: cartesian product. *)
let cartesian_scenario () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"x" (Schema.make [ int_col "a" ]) in
  let _ = Database.create_table db ~name:"y" (Schema.make [ int_col "b" ]) in
  let capture = Capture.create db in
  Capture.attach capture ~table:"x";
  Capture.attach capture ~table:"y";
  let b = C.View.binder db [ ("x", "x"); ("y", "y") ] in
  let view =
    C.View.create db ~name:"prod"
      ~sources:[ ("x", "x"); ("y", "y") ]
      ~predicate:[]
      ~project:[ b "x" "a"; b "y" "b" ]
  in
  { db; capture; history = History.create db; view }

let test_cartesian () =
  let s = cartesian_scenario () in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"x" (Tuple.ints [ 1 ]);
         Database.insert txn ~table:"x" (Tuple.ints [ 2 ]);
         Database.insert txn ~table:"y" (Tuple.ints [ 10 ]);
         Database.insert txn ~table:"y" (Tuple.ints [ 20 ]);
         Database.insert txn ~table:"y" (Tuple.ints [ 30 ])));
  let ctx = ctx_of s in
  let rows, _ = C.Executor.evaluate ctx (C.Pquery.all_base 2) in
  Alcotest.(check int) "2x3 product" 6 (List.length rows)

(* Self-join: same table twice. *)
let selfjoin_scenario () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"e" (Schema.make [ int_col "id"; int_col "mgr" ]) in
  let capture = Capture.create db in
  Capture.attach capture ~table:"e";
  let b = C.View.binder db [ ("e", "emp"); ("e", "boss") ] in
  let view =
    C.View.create db ~name:"emp_boss"
      ~sources:[ ("e", "emp"); ("e", "boss") ]
      ~predicate:[ Predicate.join (b "emp" "mgr") (b "boss" "id") ]
      ~project:[ b "emp" "id"; b "boss" "id" ]
  in
  { db; capture; history = History.create db; view }

let test_self_join () =
  let s = selfjoin_scenario () in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"e" (Tuple.ints [ 1; 1 ]);
         Database.insert txn ~table:"e" (Tuple.ints [ 2; 1 ]);
         Database.insert txn ~table:"e" (Tuple.ints [ 3; 2 ])));
  let ctx = ctx_of s in
  let rows, _ = C.Executor.evaluate ctx (C.Pquery.all_base 2) in
  let got = Relation.create (C.View.output_schema s.view) in
  List.iter (fun (tuple, count, _) -> Relation.add got tuple count) rows;
  let expected =
    Relation.of_list (C.View.output_schema s.view)
      [ (Tuple.ints [ 1; 1 ], 1); (Tuple.ints [ 2; 1 ], 1); (Tuple.ints [ 3; 2 ], 1) ]
  in
  Alcotest.check relation "manager join" expected got

let test_null_join_keys () =
  let s = two_table () in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"r" (Tuple.make [ Value.Null; Value.Int 1 ]);
         Database.insert txn ~table:"s" (Tuple.make [ Value.Null; Value.Int 2 ]);
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 5 ]);
         Database.insert txn ~table:"s" (Tuple.ints [ 1; 6 ])));
  let ctx = ctx_of s in
  let rows, _ = C.Executor.evaluate ctx (C.Pquery.all_base 2) in
  (* NULL keys must not join with each other (SQL semantics). *)
  Alcotest.(check int) "only the non-null match" 1 (List.length rows)

let test_timestamps_min_rule () =
  let s = two_table () in
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"r" (Tuple.ints [ 1; 7 ])));
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"s" (Tuple.ints [ 1; 8 ])));
  let ctx = ctx_of s in
  Roll_capture.Capture.advance s.capture;
  (* Both deltas windowed: the row's ts must be the min of the two. *)
  let q =
    [| C.Pquery.Win { lo = 0; hi = 2 }; C.Pquery.Win { lo = 0; hi = 2 } |]
  in
  (match C.Executor.evaluate ctx q with
  | [ (_, count, ts) ], _ ->
      Alcotest.(check int) "count" 1 count;
      Alcotest.(check int) "min ts" 1 ts
  | rows, _ -> Alcotest.failf "expected one row, got %d" (List.length rows));
  (* Base x delta: ts comes from the delta side. *)
  let q2 = [| C.Pquery.Base; C.Pquery.Win { lo = 0; hi = 2 } |] in
  match C.Executor.evaluate ctx q2 with
  | [ (_, _, ts) ], _ -> Alcotest.(check int) "delta-side ts" 2 ts
  | rows, _ -> Alcotest.failf "expected one row, got %d" (List.length rows)

let test_count_products () =
  let s = two_table () in
  ignore
    (Database.run s.db (fun txn ->
         (* Duplicate rows: 2 copies x 3 copies = 6. *)
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 0 ]);
         Database.insert txn ~table:"r" (Tuple.ints [ 1; 0 ]);
         Database.insert txn ~table:"s" (Tuple.ints [ 1; 0 ]);
         Database.insert txn ~table:"s" (Tuple.ints [ 1; 0 ]);
         Database.insert txn ~table:"s" (Tuple.ints [ 1; 0 ])));
  let ctx = ctx_of s in
  let rows, _ = C.Executor.evaluate ctx (C.Pquery.all_base 2) in
  let total = List.fold_left (fun acc (_, c, _) -> acc + c) 0 rows in
  Alcotest.(check int) "multiset product" 6 total

let test_window_guard () =
  let s = two_table () in
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"r" (Tuple.ints [ 1; 1 ])));
  let ctx = ctx_of s in
  ctx.C.Ctx.auto_capture <- false;
  (* Capture has seen nothing: any window is beyond its high-water mark. *)
  Alcotest.(check bool) "window beyond capture hwm rejected" true
    (try
       ignore (C.Executor.evaluate ctx [| C.Pquery.Win { lo = 0; hi = 1 }; C.Pquery.Base |]);
       false
     with Invalid_argument _ -> true)

let test_execute_stats_and_marker () =
  let s = two_table () in
  random_txns (Prng.create ~seed:30) s 10;
  let ctx = ctx_of s in
  let before = Database.now s.db in
  let t_exec =
    C.Executor.execute ctx ~sign:1 [| C.Pquery.Win { lo = 0; hi = before }; C.Pquery.Base |]
  in
  Alcotest.(check int) "marker consumed a csn" (before + 1) t_exec;
  Alcotest.(check int) "one query recorded" 1 (C.Stats.queries ctx.C.Ctx.stats);
  match C.Stats.footprints ctx.C.Ctx.stats with
  | [ fp ] ->
      Alcotest.(check int) "exec time" t_exec fp.C.Stats.exec;
      Alcotest.(check int) "two resources read" 2 (List.length fp.C.Stats.reads);
      Alcotest.(check bool) "delta resource named" true
        (List.exists (fun (r, _) -> r = "\xce\x94r") fp.C.Stats.reads)
  | _ -> Alcotest.fail "expected one footprint"

let test_execute_sign () =
  let s = two_table () in
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"r" (Tuple.ints [ 1; 1 ])));
  ignore (Database.run s.db (fun txn -> Database.insert txn ~table:"s" (Tuple.ints [ 1; 1 ])));
  let ctx = ctx_of s in
  let now = Database.now s.db in
  ignore (C.Executor.execute ctx ~sign:(-1) [| C.Pquery.Win { lo = 0; hi = now }; C.Pquery.Base |]);
  match Roll_delta.Delta.to_list ctx.C.Ctx.out with
  | [ row ] -> Alcotest.(check int) "negated count" (-1) row.Roll_delta.Delta.count
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let test_materialize () =
  let s = two_table () in
  random_txns (Prng.create ~seed:31) s 30;
  let ctx = ctx_of s in
  let materialized, t_exec = C.Executor.materialize ctx in
  Alcotest.check relation "materialized = oracle"
    (C.Oracle.view_at s.history s.view (t_exec - 1))
    materialized;
  Alcotest.(check bool) "t_exec current" true (t_exec = Database.now s.db)

let suite =
  [
    Alcotest.test_case "vs oracle, 2-way" `Quick test_vs_oracle_two_table;
    Alcotest.test_case "vs oracle, 3-way" `Quick test_vs_oracle_three_table;
    qtest prop_executor_matches_oracle;
    Alcotest.test_case "cartesian product" `Quick test_cartesian;
    Alcotest.test_case "self-join" `Quick test_self_join;
    Alcotest.test_case "NULL join keys do not match" `Quick test_null_join_keys;
    Alcotest.test_case "minimum-timestamp rule" `Quick test_timestamps_min_rule;
    Alcotest.test_case "multiset count products" `Quick test_count_products;
    Alcotest.test_case "window beyond capture rejected" `Quick test_window_guard;
    Alcotest.test_case "execute records stats and marker" `Quick test_execute_stats_and_marker;
    Alcotest.test_case "execute applies sign" `Quick test_execute_sign;
    Alcotest.test_case "materialize" `Quick test_materialize;
  ]

let test_explain () =
  let s = three_table () in
  (* Enough churn that every base table clearly outweighs a 2-commit
     window. *)
  random_txns (Prng.create ~seed:32) s 150;
  let ctx = ctx_of s in
  Roll_capture.Capture.advance s.capture;
  let base_plan = C.Executor.explain ctx (C.Pquery.all_base 3) in
  Alcotest.(check bool) "mentions a hash join" true
    (String.length base_plan > 0
    && Test_support.Helpers.contains base_plan "hash-join");
  let now = Database.now s.db in
  let delta_plan =
    (* A short window: far fewer rows than any base table, so the planner
       must let it drive the join. *)
    C.Executor.explain ctx
      (C.Pquery.replace (C.Pquery.all_base 3) 2
         (C.Pquery.Win { lo = now - 2; hi = now }))
  in
  (* The delta window should drive the join (scanned first). *)
  (match String.index_opt delta_plan '\n' with
  | Some i ->
      let rest = String.sub delta_plan (i + 1) (String.length delta_plan - i - 1) in
      Alcotest.(check bool) "delta scanned first" true
        (Test_support.Helpers.contains
           (String.sub rest 0 (min 40 (String.length rest)))
           "scan \xce\x94")
  | None -> Alcotest.fail "plan has no lines");
  (* Explain commits nothing. *)
  Alcotest.(check int) "no commits from explain" now (Database.now s.db)

let test_explain_cartesian () =
  let s = cartesian_scenario () in
  ignore
    (Database.run s.db (fun txn ->
         Database.insert txn ~table:"x" (Tuple.ints [ 1 ]);
         Database.insert txn ~table:"y" (Tuple.ints [ 2 ])));
  let ctx = ctx_of s in
  Roll_capture.Capture.advance s.capture;
  Alcotest.(check bool) "nested loop shown" true
    (Test_support.Helpers.contains
       (C.Executor.explain ctx (C.Pquery.all_base 2))
       "nested-loop")

let suite =
  suite
  @ [
      Alcotest.test_case "explain plans" `Quick test_explain;
      Alcotest.test_case "explain cartesian" `Quick test_explain_cartesian;
    ]
