(* Trigger-based capture (Section 5): demonstrate concretely why naive
   write-time triggers cannot stamp deltas correctly, and that the
   commit-trigger remedy agrees with log capture. *)

open Test_support.Helpers
open Roll_relation
module Delta = Roll_delta.Delta
module Capture = Roll_capture.Capture
module Trigger_capture = Roll_capture.Trigger_capture

(* Two transactions that begin in one order and commit in the other — the
   exact situation Section 5 says breaks write-time timestamps. *)
let out_of_order_commits stamping =
  let s = two_table () in
  let tc = Trigger_capture.attach s.db ~stamping [ "r" ] in
  let t1 = Database.begin_txn s.db in
  let t2 = Database.begin_txn s.db in
  Database.insert t1 ~table:"r" (Tuple.ints [ 1; 1 ]);
  Database.insert t2 ~table:"r" (Tuple.ints [ 2; 2 ]);
  let csn2 = Database.commit s.db t2 in
  let csn1 = Database.commit s.db t1 in
  Capture.advance s.capture;
  (s, tc, csn2, csn1)

let test_write_time_misorders () =
  let _, tc, csn2, _ = out_of_order_commits `Write_time in
  let d = Trigger_capture.delta tc ~table:"r" in
  (* Roll table r to the first commit time using the trigger delta: the
     write-time stamps claim tuple (1,1) came first, but the true state
     after csn2 is { (2,2) }. *)
  let state = Delta.net_effect d ~lo:0 ~hi:csn2 in
  Alcotest.(check bool) "write-time delta is wrong at csn2" false
    (Relation.count state (Tuple.ints [ 2; 2 ]) = 1
    && Relation.count state (Tuple.ints [ 1; 1 ]) = 0)

let test_commit_time_correct () =
  let s, tc, csn2, csn1 = out_of_order_commits `Commit_time in
  let d = Trigger_capture.delta tc ~table:"r" in
  let state = Delta.net_effect d ~lo:0 ~hi:csn2 in
  Alcotest.(check int) "t2's row there" 1 (Relation.count state (Tuple.ints [ 2; 2 ]));
  Alcotest.(check int) "t1's row not yet" 0 (Relation.count state (Tuple.ints [ 1; 1 ]));
  let state = Delta.net_effect d ~lo:0 ~hi:csn1 in
  Alcotest.(check int) "both after csn1" 2 (Relation.total_count state);
  Alcotest.(check bool) "equals log capture" true
    (Trigger_capture.matches_log_capture tc s.capture ~table:"r")

let test_aborts_pollute_write_time () =
  let s = two_table () in
  let tc_w = Trigger_capture.attach s.db ~stamping:`Write_time [ "r" ] in
  let txn = Database.begin_txn s.db in
  Database.insert txn ~table:"r" (Tuple.ints [ 9; 9 ]);
  Database.abort txn;
  Alcotest.(check int) "aborted write captured anyway" 1
    (Delta.length (Trigger_capture.delta tc_w ~table:"r"))

let test_aborts_clean_with_commit_trigger () =
  let s = two_table () in
  let tc_c = Trigger_capture.attach s.db ~stamping:`Commit_time [ "r" ] in
  let txn = Database.begin_txn s.db in
  Database.insert txn ~table:"r" (Tuple.ints [ 9; 9 ]);
  Database.abort txn;
  ignore (Database.run s.db (fun t -> Database.insert t ~table:"r" (Tuple.ints [ 1; 1 ])));
  Capture.advance s.capture;
  Alcotest.(check int) "only the committed row" 1
    (Delta.length (Trigger_capture.delta tc_c ~table:"r"));
  Alcotest.(check bool) "equals log capture" true
    (Trigger_capture.matches_log_capture tc_c s.capture ~table:"r")

let test_commit_time_equals_log_capture_random () =
  let s = two_table () in
  let tc = Trigger_capture.attach s.db ~stamping:`Commit_time [ "r"; "s" ] in
  random_txns (Prng.create ~seed:190) s 50;
  Capture.advance s.capture;
  List.iter
    (fun table ->
      Alcotest.(check bool) (table ^ " matches") true
        (Trigger_capture.matches_log_capture tc s.capture ~table))
    [ "r"; "s" ]

let test_attach_guard () =
  let s = two_table () in
  random_txns (Prng.create ~seed:191) s 2;
  Alcotest.(check bool) "late attach rejected" true
    (try
       ignore (Trigger_capture.attach s.db ~stamping:`Commit_time [ "r" ]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "write-time stamps misorder" `Quick test_write_time_misorders;
    Alcotest.test_case "commit-time stamps correct" `Quick test_commit_time_correct;
    Alcotest.test_case "aborts pollute write-time capture" `Quick
      test_aborts_pollute_write_time;
    Alcotest.test_case "aborts clean with commit trigger" `Quick
      test_aborts_clean_with_commit_trigger;
    Alcotest.test_case "commit-time = log capture on random streams" `Quick
      test_commit_time_equals_log_capture_random;
    Alcotest.test_case "late attach rejected" `Quick test_attach_guard;
  ]
