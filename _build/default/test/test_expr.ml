(* Arithmetic expressions: evaluation semantics, static typing, computed
   columns in maintained views, and the DSL surface. *)

open Test_support.Helpers
open Roll_relation
module Time = Roll_delta.Time
module C = Roll_core
module Sql = Roll_dsl.Sql

let qtest = QCheck_alcotest.to_alcotest

let eval e = Predicate.eval_operand [| Tuple.ints [ 10; 3 ] |] e

let c0 = Predicate.Col (Predicate.col 0 0)

let c1 = Predicate.Col (Predicate.col 0 1)

let i n = Predicate.Const (Value.Int n)

let f x = Predicate.Const (Value.Float x)

let test_eval_int_arith () =
  Alcotest.(check bool) "add" true (eval (Predicate.Add (c0, c1)) = Value.Int 13);
  Alcotest.(check bool) "sub" true (eval (Predicate.Sub (c0, c1)) = Value.Int 7);
  Alcotest.(check bool) "mul" true (eval (Predicate.Mul (c0, c1)) = Value.Int 30);
  Alcotest.(check bool) "div truncates" true (eval (Predicate.Div (c0, c1)) = Value.Int 3);
  Alcotest.(check bool) "neg" true (eval (Predicate.Neg c0) = Value.Int (-10));
  Alcotest.(check bool) "nested" true
    (eval (Predicate.Mul (Predicate.Add (c0, c1), i 2)) = Value.Int 26)

let test_eval_float_promotion () =
  Alcotest.(check bool) "int+float is float" true
    (eval (Predicate.Add (c0, f 0.5)) = Value.Float 10.5);
  Alcotest.(check bool) "float div" true
    (eval (Predicate.Div (f 7.0, i 2)) = Value.Float 3.5)

let test_eval_null_propagation () =
  let null = Predicate.Const Value.Null in
  Alcotest.(check bool) "null + x" true (eval (Predicate.Add (null, c0)) = Value.Null);
  Alcotest.(check bool) "neg null" true (eval (Predicate.Neg null) = Value.Null);
  Alcotest.(check bool) "div by zero" true (eval (Predicate.Div (c0, i 0)) = Value.Null);
  Alcotest.(check bool) "float div by zero" true
    (eval (Predicate.Div (f 1.0, f 0.0)) = Value.Null);
  Alcotest.(check bool) "string arith is null" true
    (eval (Predicate.Add (Predicate.Const (Value.Str "x"), c0)) = Value.Null);
  (* NULL-valued comparisons are false, so such rows filter out. *)
  let bindings = [| Tuple.ints [ 10; 0 ] |] in
  Alcotest.(check bool) "x/0 > -100 is false" false
    (Predicate.eval_atom bindings
       (Predicate.cmp Predicate.Gt (Predicate.Div (c0, c1)) (i (-100))))

let test_infer_types () =
  let col_type (c : Predicate.col) = if c.column = 0 then Value.T_int else Value.T_float in
  let infer = Predicate.infer_type col_type in
  Alcotest.(check bool) "int" true (infer (Predicate.Add (c0, i 1)) = Ok Value.T_int);
  Alcotest.(check bool) "promoted" true (infer (Predicate.Add (c0, c1)) = Ok Value.T_float);
  Alcotest.(check bool) "string arith rejected" true
    (match infer (Predicate.Add (Predicate.Const (Value.Str "x"), c0)) with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool) "null const rejected" true
    (match infer (Predicate.Const Value.Null) with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "plain string col fine" true
    (infer (Predicate.Const (Value.Str "x")) = Ok Value.T_string)

(* A maintained view with computed columns stays correct. *)
let test_computed_view_maintained () =
  let s = two_table () in
  let b = C.View.binder s.db [ ("r", "r"); ("s", "s") ] in
  let view =
    C.View.create_select s.db ~name:"computed"
      ~sources:[ ("r", "r"); ("s", "s") ]
      ~predicate:[ Predicate.join (b "r" "k") (b "s" "k") ]
      ~select:
        [
          ("k", Predicate.Col (b "r" "k"));
          ("vw", Predicate.Mul (Predicate.Col (b "r" "v"), Predicate.Col (b "s" "w")));
          ("v2", Predicate.Add (Predicate.Col (b "r" "v"), Predicate.Const (Value.Int 100)));
        ]
  in
  Alcotest.(check string) "computed column name" "vw"
    (Schema.column (C.View.output_schema view) 1).Schema.name;
  let controller =
    C.Controller.create s.db s.capture view
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 5))
  in
  random_txns (Prng.create ~seed:170) s 40;
  let t = C.Controller.refresh_latest controller in
  Alcotest.check relation "computed view = oracle"
    (C.Oracle.view_at s.history view t)
    (C.Controller.contents controller)

(* Computed columns through the asynchronous machinery with races. *)
let prop_computed_view_timed_delta =
  QCheck.Test.make ~name:"computed columns under racing updates" ~count:15
    QCheck.small_int
    (fun seed ->
      let s = two_table () in
      let b = C.View.binder s.db [ ("r", "r"); ("s", "s") ] in
      let view =
        C.View.create_select s.db ~name:"computed"
          ~sources:[ ("r", "r"); ("s", "s") ]
          ~predicate:[ Predicate.join (b "r" "k") (b "s" "k") ]
          ~select:
            [ ("diff", Predicate.Sub (Predicate.Col (b "r" "v"), Predicate.Col (b "s" "w"))) ]
      in
      random_txns (Prng.create ~seed) s 20;
      let ctx = C.Ctx.create ~t_initial:Time.origin s.db s.capture view in
      inject_updates (Prng.create ~seed:(seed + 2)) s ctx ~per_execute:2;
      let hi = Database.now s.db in
      C.Compute_delta.run ctx (C.Pquery.all_base 2) (Time.Vector.const 2 0) hi;
      match
        C.Oracle.check_timed_view_delta s.history view ctx.C.Ctx.out ~lo:0 ~hi
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let test_create_select_validation () =
  let s = two_table () in
  let b = C.View.binder s.db [ ("r", "r") ] in
  Alcotest.(check bool) "string arithmetic rejected at create" true
    (try
       ignore
         (C.View.create_select s.db ~name:"bad" ~sources:[ ("r", "r") ]
            ~predicate:[]
            ~select:
              [ ("x", Predicate.Add (Predicate.Const (Value.Str "a"), Predicate.Col (b "r" "k"))) ]);
       false
     with Invalid_argument _ -> true)

(* --- DSL surface --- *)

let db_with_orders () =
  let db = Database.create () in
  let int_col name = { Schema.name; ty = Value.T_int } in
  let _ =
    Database.create_table db ~name:"orders"
      (Schema.make [ int_col "okey"; int_col "price"; int_col "qty" ])
  in
  db

let test_dsl_arithmetic () =
  let db = db_with_orders () in
  let view =
    Sql.parse_view db ~name:"v"
      "SELECT o.okey, o.price * o.qty AS revenue, (o.price + 1) / 2 AS half \
       FROM orders o WHERE o.price * o.qty > 100 AND -o.okey < 0"
  in
  let schema = C.View.output_schema view in
  Alcotest.(check string) "AS name" "revenue" (Schema.column schema 1).Schema.name;
  Alcotest.(check string) "AS name 2" "half" (Schema.column schema 2).Schema.name;
  (* Behaviour. *)
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"orders" (Tuple.ints [ 1; 50; 3 ]);
         Database.insert txn ~table:"orders" (Tuple.ints [ 2; 10; 2 ])));
  let history = Roll_storage.History.create db in
  let result = C.Oracle.view_at history view (Database.now db) in
  Alcotest.(check int) "only the big order" 1 (Relation.distinct_count result);
  Alcotest.(check int) "revenue computed" 1
    (Relation.count result (Tuple.ints [ 1; 150; 25 ]))

let test_dsl_precedence () =
  let db = db_with_orders () in
  let view =
    Sql.parse_view db ~name:"v"
      "SELECT o.price + o.qty * 2 AS x FROM orders o"
  in
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"orders" (Tuple.ints [ 1; 10; 3 ])));
  let history = Roll_storage.History.create db in
  let result = C.Oracle.view_at history view (Database.now db) in
  (* 10 + 3*2 = 16, not (10+3)*2 = 26. *)
  Alcotest.(check int) "precedence" 1 (Relation.count result (Tuple.ints [ 16 ]))

let test_dsl_default_expr_names () =
  let db = db_with_orders () in
  let view = Sql.parse_view db ~name:"v" "SELECT o.price + 1, o.okey FROM orders o" in
  let schema = C.View.output_schema view in
  Alcotest.(check string) "positional default" "expr0" (Schema.column schema 0).Schema.name;
  Alcotest.(check string) "column default" "o_okey" (Schema.column schema 1).Schema.name

let test_dsl_expr_roundtrip () =
  let db = db_with_orders () in
  let sql =
    "SELECT o.okey, o.price * o.qty AS revenue FROM orders o WHERE o.price - 5 > 0"
  in
  let v1 = Sql.parse_view db ~name:"v" sql in
  let v2 = Sql.parse_view db ~name:"v" (Sql.print_view v1) in
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"orders" (Tuple.ints [ 1; 50; 3 ]);
         Database.insert txn ~table:"orders" (Tuple.ints [ 2; 3; 2 ])));
  let history = Roll_storage.History.create db in
  Alcotest.(check bool) "round trip behaves identically" true
    (Relation.equal
       (C.Oracle.view_at history v1 (Database.now db))
       (C.Oracle.view_at history v2 (Database.now db)))

let test_negative_literal_still_works () =
  let db = db_with_orders () in
  let view =
    Sql.parse_view db ~name:"v" "SELECT o.okey FROM orders o WHERE o.price > -5"
  in
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"orders" (Tuple.ints [ 1; 0; 0 ])));
  let history = Roll_storage.History.create db in
  Alcotest.(check int) "0 > -5 passes" 1
    (Relation.distinct_count (C.Oracle.view_at history view (Database.now db)))

let suite =
  [
    Alcotest.test_case "integer arithmetic" `Quick test_eval_int_arith;
    Alcotest.test_case "float promotion" `Quick test_eval_float_promotion;
    Alcotest.test_case "NULL propagation" `Quick test_eval_null_propagation;
    Alcotest.test_case "type inference" `Quick test_infer_types;
    Alcotest.test_case "computed view maintained" `Quick test_computed_view_maintained;
    qtest prop_computed_view_timed_delta;
    Alcotest.test_case "create_select validation" `Quick test_create_select_validation;
    Alcotest.test_case "DSL arithmetic and AS" `Quick test_dsl_arithmetic;
    Alcotest.test_case "DSL precedence" `Quick test_dsl_precedence;
    Alcotest.test_case "DSL default expression names" `Quick test_dsl_default_expr_names;
    Alcotest.test_case "DSL expression round trip" `Quick test_dsl_expr_roundtrip;
    Alcotest.test_case "negative literals still parse" `Quick
      test_negative_literal_still_works;
  ]
