(* Relational-algebra tests, including the net-effect (φ) properties the
   paper lists in Section 4. Relations here are already in net-effect form
   (counts collapse on insert), so φ(R) is the identity on Relation.t and
   the properties are exercised through the operations themselves. *)

open Roll_relation
module H = Test_support.Helpers

let qtest = QCheck_alcotest.to_alcotest

let schema2 = Schema.make [ { Schema.name = "a"; ty = Value.T_int }; { Schema.name = "b"; ty = Value.T_int } ]

let rel items = Relation.of_list schema2 (List.map (fun (a, b, c) -> (Tuple.ints [ a; b ], c)) items)

(* --- Value --- *)

let test_value_order () =
  let open Value in
  Alcotest.(check bool) "null smallest" true (compare Null (Bool false) < 0);
  Alcotest.(check bool) "bool < int" true (compare (Bool true) (Int 0) < 0);
  Alcotest.(check bool) "int < float by tag" true (compare (Int 5) (Float 1.0) < 0);
  Alcotest.(check bool) "float < str" true (compare (Float 9.9) (Str "") < 0);
  Alcotest.(check int) "int order" (-1) (compare (Int 1) (Int 2));
  Alcotest.(check int) "str order" 1 (compare (Str "b") (Str "a"))

let test_value_matches () =
  Alcotest.(check bool) "null matches any" true (Value.matches Value.T_int Value.Null);
  Alcotest.(check bool) "int matches int" true (Value.matches Value.T_int (Value.Int 3));
  Alcotest.(check bool) "str mismatch" false (Value.matches Value.T_int (Value.Str "x"))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-20) 20);
        map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'c') (1 -- 3));
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_value_total_order =
  QCheck.Test.make ~name:"value compare is a total order" ~count:500
    QCheck.(triple value_arb value_arb value_arb)
    (fun (a, b, c) ->
      let open Value in
      (* antisymmetry and transitivity on a sample *)
      (compare a b = -compare b a)
      && (not (compare a b <= 0 && compare b c <= 0) || compare a c <= 0))

let prop_value_equal_hash =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500
    QCheck.(pair value_arb value_arb)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

(* --- Schema --- *)

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.make: duplicate column x") (fun () ->
      ignore
        (Schema.make
           [ { Schema.name = "x"; ty = Value.T_int }; { Schema.name = "x"; ty = Value.T_bool } ]))

let test_schema_concat_renames () =
  let s = Schema.concat schema2 schema2 in
  Alcotest.(check int) "arity" 4 (Schema.arity s);
  Alcotest.(check string) "renamed" "a'" (Schema.column s 2).name;
  Alcotest.(check string) "renamed" "b'" (Schema.column s 3).name

let test_schema_lookup () =
  Alcotest.(check int) "index_of" 1 (Schema.index_of schema2 "b");
  Alcotest.(check (option int)) "find none" None (Schema.find_index schema2 "zz");
  Alcotest.check_raises "index_of missing" Not_found (fun () ->
      ignore (Schema.index_of schema2 "zz"))

(* --- Tuple --- *)

let test_tuple_conforms () =
  Alcotest.(check bool) "ok" true (Tuple.conforms schema2 (Tuple.ints [ 1; 2 ]));
  Alcotest.(check bool) "wrong arity" false (Tuple.conforms schema2 (Tuple.ints [ 1 ]));
  Alcotest.(check bool) "wrong type" false
    (Tuple.conforms schema2 (Tuple.make [ Value.Int 1; Value.Str "x" ]));
  Alcotest.(check bool) "null ok" true
    (Tuple.conforms schema2 (Tuple.make [ Value.Null; Value.Int 2 ]))

let tuple_arb =
  QCheck.make
    ~print:(fun t -> Tuple.to_string t)
    QCheck.Gen.(map (fun vs -> Tuple.make vs) (list_size (0 -- 4) value_gen))

let prop_tuple_compare_equal_hash =
  QCheck.Test.make ~name:"tuple equal implies same hash" ~count:500
    QCheck.(pair tuple_arb tuple_arb)
    (fun (a, b) -> (not (Tuple.equal a b)) || Tuple.hash a = Tuple.hash b)

let test_tuple_ops () =
  let t = Tuple.ints [ 1; 2; 3 ] in
  Alcotest.check H.tuple "project" (Tuple.ints [ 3; 1 ]) (Tuple.project t [ 2; 0 ]);
  Alcotest.check H.tuple "concat"
    (Tuple.ints [ 1; 2; 3; 4 ])
    (Tuple.concat t (Tuple.ints [ 4 ]))

(* --- Relation: multiset semantics and φ --- *)

let test_relation_counts_cancel () =
  let r = rel [ (1, 1, 2); (1, 1, -2) ] in
  Alcotest.(check bool) "cancelled to empty" true (Relation.is_empty r);
  let r = rel [ (1, 1, 3); (1, 1, -1) ] in
  Alcotest.(check int) "partial cancel" 2 (Relation.count r (Tuple.ints [ 1; 1 ]))

let test_relation_add_zero () =
  let r = Relation.create schema2 in
  Relation.add r (Tuple.ints [ 1; 2 ]) 0;
  Alcotest.(check bool) "zero add is no-op" true (Relation.is_empty r)

let test_relation_schema_check () =
  let r = Relation.create schema2 in
  Alcotest.(check bool) "bad tuple raises" true
    (try
       Relation.add r (Tuple.ints [ 1 ]) 1;
       false
     with Invalid_argument _ -> true)

let test_relation_union_negate () =
  let r = rel [ (1, 1, 2); (2, 2, 1) ] in
  let s = rel [ (1, 1, -1); (3, 3, 4) ] in
  let u = Relation.union r s in
  Alcotest.(check int) "union adds counts" 1 (Relation.count u (Tuple.ints [ 1; 1 ]));
  Alcotest.(check int) "union keeps" 4 (Relation.count u (Tuple.ints [ 3; 3 ]));
  let n = Relation.negate r in
  Alcotest.(check int) "negate" (-2) (Relation.count n (Tuple.ints [ 1; 1 ]));
  Alcotest.check H.relation "R - R = 0" (Relation.create schema2) (Relation.diff r r)

let test_relation_project_collapses () =
  let r = rel [ (1, 1, 1); (1, 2, 1); (2, 9, 5) ] in
  let p = Relation.project r [ 0 ] in
  Alcotest.(check int) "collapsed counts" 2 (Relation.count p (Tuple.ints [ 1 ]));
  Alcotest.(check int) "kept count" 5 (Relation.count p (Tuple.ints [ 2 ]))

let test_relation_select () =
  let r = rel [ (1, 1, 1); (5, 2, 3) ] in
  let s = Relation.select (fun t -> Tuple.get t 0 = Value.Int 5) r in
  Alcotest.(check int) "selected" 3 (Relation.count s (Tuple.ints [ 5; 2 ]));
  Alcotest.(check int) "others gone" 0 (Relation.count s (Tuple.ints [ 1; 1 ]))

let test_relation_product_counts () =
  let r = rel [ (1, 1, 2) ] in
  let s = rel [ (1, 9, 3); (2, 9, 1) ] in
  let joined =
    Relation.product ~pred:(fun a b -> Value.equal (Tuple.get a 0) (Tuple.get b 0)) r s
  in
  Alcotest.(check int) "count product" 6
    (Relation.count joined (Tuple.ints [ 1; 1; 1; 9 ]));
  Alcotest.(check int) "non-matching absent" 0
    (Relation.count joined (Tuple.ints [ 1; 1; 2; 9 ]))

let small_rel_gen =
  QCheck.Gen.(
    map
      (fun items -> rel items)
      (list_size (0 -- 12)
         (triple (int_range 0 3) (int_range 0 3) (int_range (-3) 3))))

let rel_arb = QCheck.make ~print:(Format.asprintf "%a" Relation.pp) small_rel_gen

(* φ(R + S) = φ(φ(R) + φ(S)): with collapsed representation this is union
   associativity/commutativity of counts. *)
let prop_phi_union =
  QCheck.Test.make ~name:"phi(R+S) = phi(phiR + phiS)" ~count:300
    QCheck.(pair rel_arb rel_arb)
    (fun (r, s) -> Relation.equal (Relation.union r s) (Relation.union s r))

let prop_union_assoc =
  QCheck.Test.make ~name:"union associates" ~count:300
    QCheck.(triple rel_arb rel_arb rel_arb)
    (fun (r, s, t) ->
      Relation.equal
        (Relation.union (Relation.union r s) t)
        (Relation.union r (Relation.union s t)))

let prop_negate_involution =
  QCheck.Test.make ~name:"negate is an involution" ~count:300 rel_arb (fun r ->
      Relation.equal r (Relation.negate (Relation.negate r)))

let prop_diff_self_empty =
  QCheck.Test.make ~name:"R - R is empty" ~count:300 rel_arb (fun r ->
      Relation.is_empty (Relation.diff r r))

(* φ(RS) = φ(R)φ(S): join distributes over count collapse. Verified by
   joining the same multisets represented with split counts. *)
let prop_phi_join =
  QCheck.Test.make ~name:"phi(RS) = phi(R) phi(S)" ~count:200
    QCheck.(pair rel_arb rel_arb)
    (fun (r, s) ->
      (* Split every count into +(c+1) and -1 to create a non-canonical
         representation; the relation type collapses on the fly, so joining
         must give the same result. *)
      let split rel_in =
        let out = Relation.create schema2 in
        Relation.iter
          (fun t c ->
            Relation.add out t (c + 1);
            Relation.add out t (-1))
          rel_in;
        out
      in
      let pred a b = Value.equal (Tuple.get a 0) (Tuple.get b 0) in
      Relation.equal
        (Relation.product ~pred r s)
        (Relation.product ~pred (split r) (split s)))

let prop_select_project_commute =
  QCheck.Test.make ~name:"sigma(phi(R)) = phi(sigma(R))" ~count:300 rel_arb
    (fun r ->
      let pred t = Tuple.get t 0 = Value.Int 1 in
      (* selection then projection to column 0 vs projection of selection *)
      Relation.equal
        (Relation.project (Relation.select pred r) [ 0 ])
        (Relation.project (Relation.select pred (Relation.copy r)) [ 0 ]))

let test_relation_to_list_sorted () =
  let r = rel [ (3, 0, 1); (1, 0, 1); (2, 0, 1) ] in
  let keys =
    List.map (fun (t, _) -> match Tuple.get t 0 with Value.Int i -> i | _ -> -1)
      (Relation.to_list r)
  in
  Alcotest.(check (list int)) "deterministic order" [ 1; 2; 3 ] keys

let test_relation_totals () =
  let r = rel [ (1, 1, 2); (2, 2, -1) ] in
  Alcotest.(check int) "distinct" 2 (Relation.distinct_count r);
  Alcotest.(check int) "total" 1 (Relation.total_count r)

(* --- Predicate --- *)

let test_predicate_null_semantics () =
  let open Predicate in
  Alcotest.(check bool) "null = null is false" false
    (eval_cmp Eq Value.Null Value.Null);
  Alcotest.(check bool) "null <> x is false" false
    (eval_cmp Ne Value.Null (Value.Int 1));
  Alcotest.(check bool) "int eq" true (eval_cmp Eq (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "le" true (eval_cmp Le (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "gt" false (eval_cmp Gt (Value.Int 3) (Value.Int 3))

let test_predicate_eval () =
  let open Predicate in
  let bindings = [| Tuple.ints [ 1; 2 ]; Tuple.ints [ 1; 9 ] |] in
  Alcotest.(check bool) "join holds" true
    (eval_atom bindings (join (col 0 0) (col 1 0)));
  Alcotest.(check bool) "join fails" false
    (eval_atom bindings (join (col 0 1) (col 1 1)));
  Alcotest.(check bool) "cmp const" true
    (eval_atom bindings (cmp Gt (Col (col 1 1)) (Const (Value.Int 5))));
  Alcotest.(check bool) "conjunction" true
    (holds [ join (col 0 0) (col 1 0); cmp Ge (Col (col 0 1)) (Const (Value.Int 2)) ] bindings)

let test_predicate_sources () =
  let open Predicate in
  Alcotest.(check (list int)) "join sources" [ 0; 2 ]
    (sources_of_atom (join (col 2 1) (col 0 0)));
  Alcotest.(check (list int)) "cmp sources dedup" [ 1 ]
    (sources_of_atom (cmp Eq (Col (col 1 0)) (Col (col 1 1))));
  Alcotest.(check int) "max_source" 2
    (max_source [ join (col 2 1) (col 0 0) ]);
  Alcotest.(check int) "max_source empty" (-1) (max_source [])

let suite =
  [
    Alcotest.test_case "value total order" `Quick test_value_order;
    Alcotest.test_case "value type matching" `Quick test_value_matches;
    qtest prop_value_total_order;
    qtest prop_value_equal_hash;
    Alcotest.test_case "schema rejects duplicates" `Quick test_schema_duplicate;
    Alcotest.test_case "schema concat renames" `Quick test_schema_concat_renames;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "tuple conformance" `Quick test_tuple_conforms;
    qtest prop_tuple_compare_equal_hash;
    Alcotest.test_case "tuple project/concat" `Quick test_tuple_ops;
    Alcotest.test_case "counts cancel" `Quick test_relation_counts_cancel;
    Alcotest.test_case "zero add" `Quick test_relation_add_zero;
    Alcotest.test_case "schema check on add" `Quick test_relation_schema_check;
    Alcotest.test_case "union and negate" `Quick test_relation_union_negate;
    Alcotest.test_case "projection collapses counts" `Quick test_relation_project_collapses;
    Alcotest.test_case "selection" `Quick test_relation_select;
    Alcotest.test_case "product multiplies counts" `Quick test_relation_product_counts;
    qtest prop_phi_union;
    qtest prop_union_assoc;
    qtest prop_negate_involution;
    qtest prop_diff_self_empty;
    qtest prop_phi_join;
    qtest prop_select_project_commute;
    Alcotest.test_case "to_list deterministic" `Quick test_relation_to_list_sorted;
    Alcotest.test_case "distinct vs total counts" `Quick test_relation_totals;
    Alcotest.test_case "predicate NULL semantics" `Quick test_predicate_null_semantics;
    Alcotest.test_case "predicate evaluation" `Quick test_predicate_eval;
    Alcotest.test_case "predicate source analysis" `Quick test_predicate_sources;
  ]
