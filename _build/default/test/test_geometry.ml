(* Geometry (Figures 6-9) unit tests: box recording, coverage counting,
   the staircase check, and the ASCII rendering. *)

module G = Roll_core.Geometry

let test_single_forward_box () =
  let g = G.create ~n:2 ~origin:0 in
  (* R1 window (0,5] x R2 base read at 8 *)
  G.record g ~sign:1 [| G.Window (0, 5); G.Full_upto 8 |];
  Alcotest.(check int) "covers change pair" 1 (G.coverage g [| 3; 4 |]);
  Alcotest.(check int) "covers original content on axis 2" 1 (G.coverage g [| 3; 0 |]);
  Alcotest.(check int) "window excludes origin" 0 (G.coverage g [| 0; 4 |]);
  Alcotest.(check int) "outside window" 0 (G.coverage g [| 6; 4 |]);
  Alcotest.(check int) "beyond base read" 0 (G.coverage g [| 3; 9 |]);
  Alcotest.(check int) "half-open lower bound" 1 (G.coverage g [| 1; 8 |])

let test_signs_cancel () =
  let g = G.create ~n:1 ~origin:0 in
  G.record g ~sign:1 [| G.Window (0, 10) |];
  G.record g ~sign:(-1) [| G.Window (0, 10) |];
  Alcotest.(check int) "cancelled" 0 (G.coverage g [| 5 |]);
  Alcotest.(check int) "two boxes recorded" 2 (G.n_boxes g)

(* The Equation 3 / Figure 7 decomposition covers the L-region exactly. *)
let test_equation_3_coverage () =
  let g = G.create ~n:2 ~origin:2 in
  let a = 2 and b = 6 and c = 9 and d = 12 in
  (* +R1_{a,b} R2@c  -R1_{a,b} R2_{b,c}  +R1@d R2_{a,b}  -R1_{0,d} R2_{a,b} *)
  G.record g ~sign:1 [| G.Window (a, b); G.Full_upto c |];
  G.record g ~sign:(-1) [| G.Window (a, b); G.Window (b, c) |];
  G.record g ~sign:1 [| G.Full_upto d; G.Window (a, b) |];
  G.record g ~sign:(-1) [| G.Window (a, d); G.Window (a, b) |];
  (match G.check g ~hwm:b with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (* Beyond the hwm the plane is not yet complete. *)
  Alcotest.(check int) "uncompensated overshoot region" 0
    (G.coverage g [| 7; 4 |])

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let test_check_detects_overcoverage () =
  let g = G.create ~n:2 ~origin:0 in
  G.record g ~sign:1 [| G.Window (0, 5); G.Full_upto 5 |];
  G.record g ~sign:1 [| G.Full_upto 5; G.Window (0, 5) |];
  (* Missing compensation: the square (0,5]^2 is double-covered. *)
  match G.check g ~hwm:5 with
  | Ok () -> Alcotest.fail "expected failure"
  | Error msg ->
      Alcotest.(check bool) "mentions coverage 2" true
        (contains_substring msg "coverage 2")

let test_check_detects_gap () =
  let g = G.create ~n:2 ~origin:0 in
  G.record g ~sign:1 [| G.Window (0, 3); G.Full_upto 5 |];
  (* axis-2 changes in (0,5] with axis-1 at origin are uncovered *)
  match G.check g ~hwm:3 with
  | Ok () -> Alcotest.fail "expected gap"
  | Error _ -> ()

let test_check_trivial_hwm () =
  let g = G.create ~n:2 ~origin:5 in
  match G.check g ~hwm:5 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_reversed_window_rejected () =
  let g = G.create ~n:1 ~origin:0 in
  Alcotest.check_raises "reversed"
    (Invalid_argument "Geometry.record: reversed window") (fun () ->
      G.record g ~sign:1 [| G.Window (5, 3) |])

let test_arity_enforced () =
  let g = G.create ~n:2 ~origin:0 in
  Alcotest.check_raises "record arity" (Invalid_argument "Geometry.record: arity")
    (fun () -> G.record g ~sign:1 [| G.Window (0, 1) |]);
  Alcotest.check_raises "coverage arity"
    (Invalid_argument "Geometry.coverage: arity") (fun () ->
      ignore (G.coverage g [| 1 |]))

let test_render_2d () =
  let g = G.create ~n:2 ~origin:0 in
  G.record g ~sign:1 [| G.Window (0, 10); G.Full_upto 10 |];
  let art = G.render_2d g ~width:8 ~upto:10 in
  let lines = String.split_on_char '\n' art |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "8 rows" 8 (List.length lines);
  Alcotest.(check int) "8 cols" 8 (String.length (List.hd lines));
  Alcotest.(check bool) "has covered cells" true (String.contains art '1')

let test_boxes_covering_labels () =
  let g = G.create ~n:1 ~origin:0 in
  G.record ~label:"fwd" g ~sign:1 [| G.Window (0, 10) |];
  G.record ~label:"comp" g ~sign:(-1) [| G.Window (3, 7) |];
  Alcotest.(check (list (pair int string))) "labels in order"
    [ (1, "fwd"); (-1, "comp") ]
    (G.boxes_covering g [| 5 |]);
  Alcotest.(check (list (pair int string))) "outside comp" [ (1, "fwd") ]
    (G.boxes_covering g [| 9 |])

let suite =
  [
    Alcotest.test_case "forward box semantics" `Quick test_single_forward_box;
    Alcotest.test_case "signs cancel" `Quick test_signs_cancel;
    Alcotest.test_case "Equation 3 covers the L-region" `Quick test_equation_3_coverage;
    Alcotest.test_case "check detects over-coverage" `Quick test_check_detects_overcoverage;
    Alcotest.test_case "check detects gaps" `Quick test_check_detects_gap;
    Alcotest.test_case "check trivial at origin" `Quick test_check_trivial_hwm;
    Alcotest.test_case "reversed window rejected" `Quick test_reversed_window_rejected;
    Alcotest.test_case "arity enforced" `Quick test_arity_enforced;
    Alcotest.test_case "2d rendering" `Quick test_render_2d;
    Alcotest.test_case "boxes_covering labels" `Quick test_boxes_covering_labels;
  ]
