test/support/fuzz.ml: Helpers List Predicate Printf Roll_capture Roll_core Roll_relation Roll_storage Roll_util Schema Value
