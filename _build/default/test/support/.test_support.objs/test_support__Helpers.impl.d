test/support/helpers.ml: Alcotest Array Hashtbl List Predicate Relation Roll_capture Roll_core Roll_delta Roll_relation Roll_storage Roll_util Schema String Tuple Value
