(* Random SPJ scenario generation for theorem fuzzing: random table sets,
   random view shapes (self-joins, cartesian corners, filters, computed
   projections), driven by the shared churn helpers. *)

open Roll_relation
module Prng = Roll_util.Prng
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module History = Roll_storage.History
module C = Roll_core

let int_col name = { Schema.name; ty = Value.T_int }

(* All tables are (a, b) over small int domains so the churn driver in
   Helpers applies and joins collide often. *)
let random_scenario rng =
  let n_tables = Prng.int_in rng ~lo:1 ~hi:3 in
  let db = Database.create () in
  let capture = Capture.create db in
  for i = 0 to n_tables - 1 do
    let name = Printf.sprintf "t%d" i in
    ignore (Database.create_table db ~name (Schema.make [ int_col "a"; int_col "b" ]));
    Capture.attach capture ~table:name
  done;
  let n_sources = Prng.int_in rng ~lo:1 ~hi:3 in
  let sources =
    List.init n_sources (fun i ->
        (Printf.sprintf "t%d" (Prng.int rng n_tables), Printf.sprintf "s%d" i))
  in
  let rand_col source = Predicate.col source (Prng.int rng 2) in
  (* Mostly-connected equi-join graph, occasionally leaving a cartesian
     corner; plus a few filters. *)
  let joins =
    List.concat
      (List.init (n_sources - 1) (fun i ->
           if Prng.chance rng 0.85 then
             [ Predicate.join (rand_col (Prng.int rng (i + 1))) (rand_col (i + 1)) ]
           else []))
  in
  let filters =
    List.concat
      (List.init (Prng.int rng 3) (fun _ ->
           let source = Prng.int rng n_sources in
           let op = Prng.pick rng [| Predicate.Le; Predicate.Ge; Predicate.Ne |] in
           [
             Predicate.cmp op
               (Predicate.Col (rand_col source))
               (Predicate.Const (Value.Int (Prng.int rng 8)));
           ]))
  in
  let rand_operand () =
    let source = Prng.int rng n_sources in
    if Prng.chance rng 0.3 then
      Predicate.Add
        (Predicate.Col (rand_col source), Predicate.Const (Value.Int (Prng.int rng 5)))
    else Predicate.Col (rand_col source)
  in
  let select =
    List.init (Prng.int_in rng ~lo:1 ~hi:3) (fun i ->
        (Printf.sprintf "o%d" i, rand_operand ()))
  in
  let view =
    C.View.create_select db ~name:"fuzzed" ~sources
      ~predicate:(joins @ filters) ~select
  in
  { Helpers.db; capture; history = History.create db; view }
