(* Five-way TPC-lite workload: the widest views in the suite, maintained by
   every algorithm and checked against the oracle on small sizes. *)

open Test_support.Helpers
module Time = Roll_delta.Time
module C = Roll_core
module T = Roll_workload.Tpch_lite

let small () =
  let t = T.create T.small_config in
  T.load_initial t;
  t

let check_controller t controller =
  let time = C.Controller.as_of controller in
  Alcotest.(check bool) "vs oracle" true
    (Roll_relation.Relation.equal
       (C.Oracle.view_at (T.history t) (T.view t) time)
       (C.Controller.contents controller))

let test_rolling_five_way () =
  let t = small () in
  let controller =
    C.Controller.create (T.db t) (T.capture t) (T.view t)
      ~algorithm:
        (C.Controller.Rolling (C.Rolling.per_relation [| 500; 500; 60; 6; 6 |]))
  in
  T.churn t ~n:40;
  ignore (C.Controller.refresh_latest controller);
  check_controller t controller;
  (* And again after more churn — incremental from the previous state. *)
  T.churn t ~n:30;
  ignore (C.Controller.refresh_latest controller);
  check_controller t controller

let test_uniform_five_way () =
  let t = small () in
  let controller =
    C.Controller.create (T.db t) (T.capture t) (T.view t)
      ~algorithm:(C.Controller.Uniform 12)
  in
  T.churn t ~n:40;
  ignore (C.Controller.refresh_latest controller);
  check_controller t controller

let test_adaptive_five_way () =
  let t = small () in
  let ctx = C.Ctx.create ~t_initial:Time.origin (T.db t) (T.capture t) (T.view t) in
  T.churn t ~n:50;
  let tuner = C.Autotune.create ~target_rows:25 ctx in
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  let target = Database.now (T.db t) in
  C.Rolling.run_until r ~target ~policy:(C.Autotune.policy tuner);
  check_ok
    (C.Oracle.check_timed_view_delta_sampled
       ~sample:(fun time -> time mod 13 = 0)
       (T.history t) (T.view t) ctx.C.Ctx.out ~lo:Time.origin
       ~hi:(C.Rolling.hwm r));
  (* Static region/nation must get wide intervals, hot lineitem narrow. *)
  Alcotest.(check bool) "lineitem tighter than region" true
    (C.Autotune.interval_for tuner 4 < C.Autotune.interval_for tuner 0)

let test_point_in_time_five_way () =
  let t = small () in
  let controller =
    C.Controller.create (T.db t) (T.capture t) (T.view t)
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 10))
  in
  let t0 = C.Controller.as_of controller in
  T.churn t ~n:30;
  let mid = t0 + 15 in
  C.Controller.refresh_to controller mid;
  Alcotest.(check bool) "mid state vs oracle" true
    (Roll_relation.Relation.equal
       (C.Oracle.view_at (T.history t) (T.view t) mid)
       (C.Controller.contents controller))

let test_larger_run_no_oracle () =
  (* Production-ish sizes, no oracle (too wide); internal invariants only. *)
  let t = T.create { T.default_config with initial_orders = 200 } in
  T.load_initial t;
  let controller =
    C.Controller.create (T.db t) (T.capture t) (T.view t)
      ~algorithm:
        (C.Controller.Rolling (C.Rolling.per_relation [| 2000; 2000; 200; 15; 15 |]))
  in
  T.churn t ~n:300;
  let time = C.Controller.refresh_latest controller in
  Alcotest.(check bool) "nonempty view" true
    (Roll_relation.Relation.distinct_count (C.Controller.contents controller) > 100);
  Alcotest.(check int) "as_of = refresh target" time (C.Controller.as_of controller);
  (* Row counts in the view cannot be negative anywhere. *)
  Roll_relation.Relation.iter
    (fun _ c -> if c <= 0 then Alcotest.fail "non-positive multiplicity in view")
    (C.Controller.contents controller)

let suite =
  [
    Alcotest.test_case "rolling, 5-way" `Quick test_rolling_five_way;
    Alcotest.test_case "uniform, 5-way" `Quick test_uniform_five_way;
    Alcotest.test_case "adaptive, 5-way" `Quick test_adaptive_five_way;
    Alcotest.test_case "point-in-time, 5-way" `Quick test_point_in_time_five_way;
    Alcotest.test_case "larger run invariants" `Quick test_larger_run_no_oracle;
  ]
