(* Star schema (Section 3.4): the fact table churns constantly while
   dimensions barely move. Rolling propagation gives each relation its own
   propagation interval — the paper's n independent tuning knobs — and this
   example shows why that matters by comparing three configurations on the
   same workload:

     - Propagate with a small uniform interval,
     - Propagate with a large uniform interval,
     - RollingPropagate with a small fact interval and large dimension
       intervals.

     dune exec examples/star_schema.exe
*)

module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Tablefmt = Roll_util.Tablefmt
module Summary = Roll_util.Summary
module C = Roll_core
module Star = Roll_workload.Star

let config =
  { Star.default_config with n_dimensions = 2; dim_size = 150; fact_initial = 800 }

let run_workload star =
  Star.load_initial star;
  Star.mixed_txns star ~n:400 ~dim_fraction:0.02

type outcome = {
  label : string;
  queries : int;
  rows_read : int;
  avg_txn_rows : float;
  max_txn_rows : float;
}

let measure label algorithm =
  let star = Star.create config in
  run_workload star;
  let ctx =
    C.Ctx.create ~t_initial:Time.origin (Star.db star) (Star.capture star)
      (Star.view star)
  in
  let target = Database.now (Star.db star) in
  (match algorithm with
  | `Uniform interval ->
      let p = C.Propagate.create ctx ~t_initial:Time.origin in
      C.Propagate.run_until p ~target ~interval
  | `Rolling intervals ->
      let r = C.Rolling.create ctx ~t_initial:Time.origin in
      C.Rolling.run_until r ~target ~policy:(C.Rolling.per_relation intervals));
  let per_txn = Summary.create () in
  List.iter
    (fun (fp : C.Stats.footprint) ->
      let rows = List.fold_left (fun acc (_, n) -> acc + n) 0 fp.reads in
      Summary.add per_txn (float_of_int rows))
    (C.Stats.footprints ctx.C.Ctx.stats);
  {
    label;
    queries = C.Stats.queries ctx.C.Ctx.stats;
    rows_read = C.Stats.rows_read ctx.C.Ctx.stats;
    avg_txn_rows = Summary.mean per_txn;
    max_txn_rows = Summary.max_value per_txn;
  }

let () =
  print_endline "Star-schema maintenance: 400 txns, ~2% dimension updates.";
  print_endline "All three runs propagate the same change history.";
  let outcomes =
    [
      measure "Propagate, uniform 10" (`Uniform 10);
      measure "Propagate, uniform 80" (`Uniform 80);
      measure "Rolling, fact=10 dims=200" (`Rolling [| 10; 200; 200 |]);
    ]
  in
  Tablefmt.print ~title:"propagation cost by configuration"
    ~header:[ "configuration"; "queries"; "rows read"; "avg rows/txn"; "max rows/txn" ]
    (List.map
       (fun o ->
         [
           o.label;
           string_of_int o.queries;
           string_of_int o.rows_read;
           Printf.sprintf "%.0f" o.avg_txn_rows;
           Printf.sprintf "%.0f" o.max_txn_rows;
         ])
       outcomes);
  print_newline ();
  print_endline
    "Uniform small intervals pay base-table scans per tiny step; uniform";
  print_endline
    "large intervals make huge transactions. Per-relation intervals keep";
  print_endline
    "fact steps small while dimensions are swept rarely - fewer rows read";
  print_endline "with bounded transaction sizes."
