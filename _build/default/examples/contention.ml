(* Contention (Section 1 / 3.2): the reason refresh work should be many
   small asynchronous transactions. A real propagation run's measured
   per-transaction footprints feed a lock simulator alongside a stream of
   OLTP updaters and view readers; the same total work is then replayed as
   one monolithic refresh transaction.

     dune exec examples/contention.exe
*)

module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Prng = Roll_util.Prng
module Summary = Roll_util.Summary
module Tablefmt = Roll_util.Tablefmt
module C = Roll_core
module Des = Roll_sim.Des
module Contention = Roll_sim.Contention
module Star = Roll_workload.Star

let () =
  (* Run a real maintenance cycle to collect honest footprints. *)
  let star = Star.create { Star.default_config with fact_initial = 600 } in
  Star.load_initial star;
  Star.mixed_txns star ~n:300 ~dim_fraction:0.05;
  let ctx =
    C.Ctx.create ~t_initial:Time.origin (Star.db star) (Star.capture star)
      (Star.view star)
  in
  let r = C.Rolling.create ctx ~t_initial:Time.origin in
  C.Rolling.run_until r
    ~target:(Database.now (Star.db star))
    ~policy:(C.Rolling.per_relation [| 15; 150; 150 |]);
  let footprints = C.Stats.footprints ctx.C.Ctx.stats in
  Printf.printf "measured %d propagation transactions from a real run\n"
    (List.length footprints);

  let model = Contention.default_costs in
  let tables = [ "fact"; "dim0"; "dim1" ] in
  let oltp seed =
    Contention.update_stream (Prng.create ~seed) ~tables ~rate:40.0 ~until:20.0
      ~mean_duration:0.004
    @ Contention.reader_stream (Prng.create ~seed:(seed + 1)) ~resource:"view"
        ~rate:10.0 ~until:20.0 ~mean_duration:0.02
  in

  let rolling =
    Des.run (Contention.propagation_txns model footprints ~start:0.5 ~spacing:0.12 @ oltp 3)
  in
  let monolithic =
    Des.run
      (Contention.monolithic_refresh model footprints ~start:0.5 ~tables :: oltp 3)
  in

  let row label result =
    match List.assoc_opt "update" result.Des.classes with
    | None -> [ label; "-"; "-"; "-" ]
    | Some st ->
        [
          label;
          Printf.sprintf "%.4f" (Summary.mean st.Des.wait);
          Printf.sprintf "%.4f" (Summary.max_value st.Des.wait);
          Printf.sprintf "%.2f" result.Des.makespan;
        ]
  in
  Tablefmt.print ~title:"updater lock waits (simulated seconds)"
    ~header:[ "refresh style"; "mean wait"; "max wait"; "makespan" ]
    [ row "rolling (many small txns)" rolling; row "monolithic (one big txn)" monolithic ];
  print_newline ();
  print_endline
    "The monolithic refresh holds shared locks on every base table for its";
  print_endline
    "whole duration, so updaters stall behind it; rolling propagation does";
  print_endline "the same work in slices that interleave with the OLTP stream."
