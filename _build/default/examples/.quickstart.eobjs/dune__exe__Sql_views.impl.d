examples/sql_views.ml: Format List Relation Roll_core Roll_delta Roll_dsl Roll_relation Roll_storage Roll_util Roll_workload Tuple Value
