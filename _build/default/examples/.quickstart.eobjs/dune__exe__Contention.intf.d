examples/contention.mli:
