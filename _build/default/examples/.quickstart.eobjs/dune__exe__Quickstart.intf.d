examples/quickstart.mli:
