examples/point_in_time.ml: Format Relation Roll_capture Roll_core Roll_dsl Roll_relation Roll_storage Roll_util Schema Tuple Value
