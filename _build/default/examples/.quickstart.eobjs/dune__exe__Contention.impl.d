examples/contention.ml: List Printf Roll_core Roll_delta Roll_sim Roll_storage Roll_util Roll_workload
