examples/point_in_time.mli:
