examples/quickstart.ml: Format Relation Roll_capture Roll_core Roll_dsl Roll_relation Roll_storage Schema Tuple Value
