examples/crash_recovery.ml: Filename Fun List Printf Relation Roll_capture Roll_core Roll_delta Roll_dsl Roll_relation Roll_storage Roll_util Schema Sys Tuple Value
