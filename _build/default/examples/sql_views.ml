(* SQL-defined views over the order-processing (chain) workload, plus an
   aggregate view maintained from the same timestamped view delta.

     dune exec examples/sql_views.exe
*)

open Roll_relation
module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Tablefmt = Roll_util.Tablefmt
module C = Roll_core
module Chain = Roll_workload.Chain

let () =
  let chain = Chain.create { Chain.default_config with initial_orders = 150 } in
  Chain.load_initial chain;
  let db = Chain.db chain in

  (* The same view the workload builds, but written in SQL. *)
  let view =
    Roll_dsl.Sql.parse_view db ~name:"big_orders_sql"
      "SELECT c.region, o.okey, o.total, l.qty \
       FROM customer c \
       JOIN orders o ON c.ckey = o.ckey AND o.total > 40 \
       JOIN lineitem l ON o.okey = l.okey"
  in
  Format.printf "%a@.@." C.View.pp view;

  let ctx = C.Ctx.create db (Chain.capture chain) view in
  let apply = C.Apply.create_materialized ctx in
  let rolling = C.Rolling.create ctx ~t_initial:(C.Apply.as_of apply) in

  (* An aggregate over the SPJ view, maintained from the same timestamped
     delta (summary-delta method, Sections 2 and 6). It starts empty at the
     materialization time, so it reports the net change per region since
     then. *)
  let agg =
    C.Aggregate.create ctx (C.Aggregate.simple ~group_by:[ 0 ] ~sums:[ 3 ])
      ~t_initial:(C.Apply.as_of apply)
  in

  Chain.run chain ~n:250;
  let target = Database.now db in
  C.Rolling.run_until rolling ~target
    ~policy:(C.Rolling.per_relation [| 300; 10; 10 |]);
  C.Apply.roll_to apply ~hwm:(C.Rolling.hwm rolling) target;
  C.Aggregate.roll_to agg ~hwm:(C.Rolling.hwm rolling) target;

  Format.printf "view rows after 250 more order transactions: %d@."
    (Relation.distinct_count (C.Apply.contents apply));

  (* Report the aggregate, noting it covers changes since materialization
     (the delta-maintained part). *)
  let rows = ref [] in
  Relation.iter
    (fun tuple _ ->
      match (Tuple.get tuple 0, Tuple.get tuple 1, Tuple.get tuple 2) with
      | Value.Int region, Value.Int count, Value.Int qty ->
          rows := [ string_of_int region; string_of_int count; string_of_int qty ] :: !rows
      | _ -> ())
    (C.Aggregate.contents agg);
  Tablefmt.print ~title:"net change per region since materialization"
    ~header:[ "region"; "line count"; "qty sum" ]
    (List.sort compare !rows);
  Format.printf "@.stats: %a@." C.Stats.pp ctx.C.Ctx.stats
