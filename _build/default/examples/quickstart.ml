(* Quickstart: define two tables and a join view, update the base tables,
   and keep the materialized view fresh with rolling propagation.

     dune exec examples/quickstart.exe
*)

open Roll_relation
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module C = Roll_core

let () =
  (* 1. A database with two tables. *)
  let db = Database.create () in
  let int_col name = { Schema.name; ty = Value.T_int } in
  let str_col name = { Schema.name; ty = Value.T_string } in
  let _ =
    Database.create_table db ~name:"product"
      (Schema.make [ int_col "pid"; str_col "name" ])
  in
  let _ =
    Database.create_table db ~name:"sale"
      (Schema.make [ int_col "pid"; int_col "qty" ])
  in

  (* 2. A capture process (the DPropR analogue) feeding delta tables from
     the write-ahead log. Attach before any data arrives. *)
  let capture = Capture.create db in
  Capture.attach capture ~table:"product";
  Capture.attach capture ~table:"sale";

  (* 3. The view: sales joined with product names. *)
  let view =
    Roll_dsl.Sql.parse_view db ~name:"sales_by_product"
      "SELECT p.name, s.qty FROM sale s JOIN product p ON s.pid = p.pid"
  in

  (* 4. A maintenance controller using rolling propagation: the sale table
     is hot (interval 5), the product table almost static (interval 50). *)
  let controller =
    Capture.advance capture;
    C.Controller.create db capture view
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 50; 5 |]))
  in

  (* 5. Business as usual: transactions against the base tables. *)
  ignore
    (Database.run db (fun txn ->
         Database.insert txn ~table:"product" (Tuple.make [ Value.Int 1; Value.Str "anvil" ]);
         Database.insert txn ~table:"product" (Tuple.make [ Value.Int 2; Value.Str "rocket" ])));
  for day = 1 to 5 do
    ignore
      (Database.run db (fun txn ->
           Database.insert txn ~table:"sale" (Tuple.ints [ 1; day ]);
           if day mod 2 = 0 then
             Database.insert txn ~table:"sale" (Tuple.ints [ 2; 10 * day ])))
  done;

  (* 6. Refresh the materialized view to "now" and read it. *)
  let t = C.Controller.refresh_latest controller in
  Format.printf "view %s as of t=%d:@.%a@."
    (C.View.name view) t Relation.pp
    (C.Controller.contents controller);

  (* 7. More updates; this time refresh to an intermediate point in time. *)
  let before = Database.now db in
  ignore
    (Database.run db (fun txn -> Database.insert txn ~table:"sale" (Tuple.ints [ 2; 999 ])));
  ignore
    (Database.run db (fun txn -> Database.insert txn ~table:"sale" (Tuple.ints [ 1; 777 ])));
  C.Controller.refresh_to controller (before + 1);
  Format.printf "@.after rolling to t=%d (one of the two late sales):@.%a@."
    (before + 1) Relation.pp
    (C.Controller.contents controller);

  (* 8. ...and finally to the present. *)
  let t = C.Controller.refresh_latest controller in
  Format.printf "@.caught up to t=%d:@.%a@." t Relation.pp
    (C.Controller.contents controller);
  Format.printf "@.propagation stats: %a@." C.Stats.pp (C.Controller.stats controller)
