(* Point-in-time refresh: the paper's motivating scenario from Section 1.

   "It is not possible to decide at 8:00 pm to refresh a materialized view
   from its 4:00 pm state to its 5:00 pm state, because at 8:00 pm the
   underlying tables may no longer be as they were at 5:00 pm."

   With rolling propagation it IS possible: the timestamped view delta lets
   the apply process land on any past state up to the high-water mark. This
   example simulates a business day on a wall clock (one commit per minute),
   materializes the view at 4:00 pm, keeps updating until 8:00 pm, and then
   — at 8:00 pm — refreshes the view to exactly its 5:00 pm state, then to
   6:30 pm, then to "now".

     dune exec examples/point_in_time.exe
*)

open Roll_relation
module Database = Roll_storage.Database
module Capture = Roll_capture.Capture
module Prng = Roll_util.Prng
module C = Roll_core

(* Wall clock: minutes since midnight; one commit = one minute. *)
let wall_of_hour h = h *. 60.0

let pp_wall ppf minutes =
  Format.fprintf ppf "%02d:%02d" (int_of_float minutes / 60) (int_of_float minutes mod 60)

let () =
  let db = Database.create ~wall_start:(wall_of_hour 9.0) ~wall_tick:1.0 () in
  let int_col name = { Schema.name; ty = Value.T_int } in
  let _ =
    Database.create_table db ~name:"trades"
      (Schema.make [ int_col "desk"; int_col "amount" ])
  in
  let _ =
    Database.create_table db ~name:"desks"
      (Schema.make [ int_col "desk"; int_col "book" ])
  in
  let capture = Capture.create db in
  Capture.attach capture ~table:"trades";
  Capture.attach capture ~table:"desks";
  let view =
    Roll_dsl.Sql.parse_view db ~name:"book_trades"
      "SELECT d.book, t.amount FROM trades t JOIN desks d ON t.desk = d.desk"
  in
  ignore
    (Database.run db (fun txn ->
         for desk = 0 to 3 do
           Database.insert txn ~table:"desks" (Tuple.ints [ desk; desk mod 2 ])
         done));

  let rng = Prng.create ~seed:2026 in
  let one_minute_of_trading () =
    ignore
      (Database.run db (fun txn ->
           Database.insert txn ~table:"trades"
             (Tuple.ints [ Prng.int rng 4; 10 + Prng.int rng 90 ])))
  in

  (* Trade from 9:01 until 4:00 pm, then materialize. *)
  while Database.wall_now db < wall_of_hour 16.0 do
    one_minute_of_trading ()
  done;
  let controller =
    C.Controller.create db capture view
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 30; 240 |]))
  in
  Format.printf "materialized at %a (t=%d), %d rows@." pp_wall
    (Database.wall_now db) (C.Controller.as_of controller)
    (Relation.distinct_count (C.Controller.contents controller));

  (* Keep trading until 8:00 pm. Nobody refreshes anything meanwhile. *)
  while Database.wall_now db < wall_of_hour 20.0 do
    one_minute_of_trading ()
  done;
  Format.printf "it is now %a; the view is %d commits stale@." pp_wall
    (Database.wall_now db)
    (Database.now db - C.Controller.as_of controller);

  let total_at label =
    let sum = ref 0 in
    Relation.iter
      (fun tuple c ->
        match Tuple.get tuple 1 with Value.Int a -> sum := !sum + (c * a) | _ -> ())
      (C.Controller.contents controller);
    Format.printf "  %s: %d rows, total amount %d@." label
      (Relation.distinct_count (C.Controller.contents controller))
      !sum
  in

  (* At 8:00 pm, refresh to the 5:00 pm state... *)
  let t5 = C.Controller.refresh_to_wall controller (wall_of_hour 17.0) in
  Format.printf "@.refreshed to %a (resolved to commit t=%d):@." pp_wall
    (wall_of_hour 17.0) t5;
  total_at "5:00 pm state";

  (* ...then to 6:30 pm... *)
  let t630 = C.Controller.refresh_to_wall controller (wall_of_hour 18.5) in
  Format.printf "@.refreshed to %a (t=%d):@." pp_wall (wall_of_hour 18.5) t630;
  total_at "6:30 pm state";

  (* ...then catch up to the present. *)
  let t_now = C.Controller.refresh_latest controller in
  Format.printf "@.refreshed to now (t=%d):@." t_now;
  total_at "8:00 pm state";

  Format.printf "@.all three refreshes ran at %a, long after the fact.@."
    pp_wall (Database.wall_now db)
