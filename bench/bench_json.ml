(* Machine-readable executor benchmark: runs the defining query and a
   forward delta-window propagation query on the star and TPC-H-lite
   workloads and writes BENCH_executor.json with rows/sec and rows-touched
   figures, so performance can be tracked across revisions without parsing
   the human-readable tables. *)

module Time = Roll_delta.Time
module Database = Roll_storage.Database
module C = Roll_core
module W = Roll_workload

type measurement = {
  workload : string;
  query : string;
  rows_emitted : int;
  rows_scanned : int;
  rows_probed : int;
  hash_builds : int;
  wall_s : float;
}

let rows_per_sec m =
  if m.wall_s > 0. then float_of_int m.rows_emitted /. m.wall_s else 0.

let json_of_measurement m =
  Printf.sprintf
    "    {\"workload\": \"%s\", \"query\": \"%s\", \"rows_emitted\": %d, \
     \"rows_scanned\": %d, \"rows_probed\": %d, \"hash_builds\": %d, \
     \"wall_s\": %.6f, \"rows_per_sec\": %.1f}"
    m.workload m.query m.rows_emitted m.rows_scanned m.rows_probed
    m.hash_builds m.wall_s (rows_per_sec m)

(* Run [q] in a fresh-stats context and read the pipeline counters back. *)
let measure ~workload ~query ctx q =
  C.Stats.reset ctx.C.Ctx.stats;
  let rows, _reads = C.Executor.evaluate ctx q in
  let stats = ctx.C.Ctx.stats in
  {
    workload;
    query;
    rows_emitted = List.length rows;
    rows_scanned = C.Stats.rows_scanned stats;
    rows_probed = C.Stats.rows_probed stats;
    hash_builds = C.Stats.hash_builds stats;
    wall_s = C.Stats.exec_wall stats;
  }

(* Drive the forward query with the source that saw the most changes. *)
let forward_query ctx n =
  let now = Database.now ctx.C.Ctx.db in
  let lo = max 0 (now - 50) in
  let busiest = ref 0 and busiest_rows = ref (-1) in
  for i = 0 to n - 1 do
    let table = C.View.source_table ctx.C.Ctx.view i in
    let rows =
      Roll_delta.Delta.window_count
        (Roll_capture.Capture.delta ctx.C.Ctx.capture ~table)
        ~lo ~hi:now
    in
    if rows > !busiest_rows then begin
      busiest := i;
      busiest_rows := rows
    end
  done;
  C.Pquery.replace (C.Pquery.all_base n) !busiest
    (C.Pquery.Win { lo; hi = now })

let star_measurements () =
  let w =
    W.Star.create
      { W.Star.default_config with fact_initial = 2000; seed = 99 }
  in
  W.Star.load_initial w;
  W.Star.mixed_txns w ~n:300 ~dim_fraction:0.05;
  let ctx =
    C.Ctx.create ~t_initial:Time.origin (W.Star.db w) (W.Star.capture w)
      (W.Star.view w)
  in
  Roll_capture.Capture.advance (W.Star.capture w);
  let n = C.View.n_sources (W.Star.view w) in
  [
    measure ~workload:"star" ~query:"all_base" ctx (C.Pquery.all_base n);
    measure ~workload:"star" ~query:"forward_window" ctx (forward_query ctx n);
  ]

let tpch_measurements () =
  let w = W.Tpch_lite.create W.Tpch_lite.small_config in
  W.Tpch_lite.load_initial w;
  W.Tpch_lite.churn w ~n:200;
  let ctx =
    C.Ctx.create ~t_initial:Time.origin (W.Tpch_lite.db w)
      (W.Tpch_lite.capture w) (W.Tpch_lite.view w)
  in
  Roll_capture.Capture.advance (W.Tpch_lite.capture w);
  let n = C.View.n_sources (W.Tpch_lite.view w) in
  [
    measure ~workload:"tpch_lite" ~query:"all_base" ctx (C.Pquery.all_base n);
    measure ~workload:"tpch_lite" ~query:"forward_window" ctx
      (forward_query ctx n);
  ]

let run () =
  let measurements = star_measurements () @ tpch_measurements () in
  let path = "BENCH_executor.json" in
  let oc = open_out path in
  output_string oc
    ("{\n  \"benchmark\": \"executor\",\n  " ^ Exp_common.meta_json ()
   ^ ",\n  \"measurements\": [\n");
  output_string oc
    (String.concat ",\n" (List.map json_of_measurement measurements));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  List.iter
    (fun m ->
      Printf.printf "  %s/%s: %d rows, %.0f rows/sec, %d scanned + %d probed\n"
        m.workload m.query m.rows_emitted (rows_per_sec m) m.rows_scanned
        m.rows_probed)
    measurements;
  Printf.printf "  wrote %s\n" path
