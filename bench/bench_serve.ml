(* Serving-path load harness: drives simulated client sessions against a
   live star maintenance loop through the rolld engine (in-process, no
   sockets — the protocol and socket layers are exercised by the test
   suite and the CI smoke job; this measures the admission/serve path)
   and writes BENCH_serve.json.

   The grid is client population x update rate at a fixed maintenance
   budget per round. Sessions issue a mix of FRESH and point-in-time
   reads targeting the recent past; a read whose target lies beyond the
   view's high-water mark queues until propagation covers it. While the
   drain keeps up, waits are near zero; once the per-round update rate
   exceeds the budget's coverage capacity, the hwm lag grows and
   recent-target reads wait for the drain — the knee the companion
   Readsim fluid model predicts (its figures are written alongside). *)

module S = Roll_serve
module C = Roll_core
module W = Roll_workload
module Database = Roll_storage.Database
module Summary = Roll_util.Summary
module Prng = Roll_util.Prng

let budget = 48

let think_rounds = 10

let recency = 50

let fresh_fraction = 0.2

let fact_interval = 5

type point = {
  clients : int;
  txns_per_round : int;
  rounds : int;
  reads : int;
  queued : int;  (* reads resolved in a later round than submitted *)
  rejected : int;
  wait_p50_ms : float;
  wait_p95_ms : float;
  wait_p99_ms : float;
  wait_rounds_p95 : float;  (* host-independent latency, in drain rounds *)
  staleness_p50 : float;
  staleness_p95 : float;  (* commits behind now at serve *)
  lag_mean : float;  (* mean now - hwm across rounds *)
  wall_s : float;
}

let run_point ~clients ~txns_per_round ~rounds =
  let star =
    W.Star.create
      { W.Star.default_config with fact_initial = 300; dim_size = 50; seed = 11 }
  in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service = C.Service.create db (W.Star.capture star) in
  let ctl =
    C.Service.register service
      ~algorithm:
        (C.Controller.Rolling
           (C.Rolling.per_relation [| fact_interval; 40; 40 |]))
      (W.Star.view star)
  in
  let engine = S.Engine.create db service in
  let rng = Prng.create ~seed:(7919 + (clients * 31) + txns_per_round) in
  let waits = Summary.create ~keep_samples:true () in
  let wait_rounds = Summary.create ~keep_samples:true () in
  let stale = Summary.create ~keep_samples:true () in
  let lag = Summary.create () in
  let outstanding = ref [] in
  let reads = ref 0 in
  let queued = ref 0 in
  let rejected = ref 0 in
  let collect round =
    outstanding :=
      List.filter
        (fun (ticket, round0) ->
          match S.Engine.poll ticket with
          | None -> true
          | Some (S.Protocol.Rows { wait; at; _ }) ->
              Summary.add waits wait;
              Summary.add wait_rounds (float_of_int (round - round0));
              Summary.add stale (float_of_int (Database.now db - at));
              if round > round0 then incr queued;
              false
          | Some _ ->
              incr rejected;
              false)
        !outstanding
  in
  let debug = Sys.getenv_opt "SERVE_DEBUG" <> None in
  let t0 = Unix.gettimeofday () in
  for round = 1 to rounds do
    if debug then
      Printf.printf "    round %d: now=%d hwm=%d out=%d %.1fs\n%!" round
        (Database.now db) (C.Controller.hwm ctl)
        (List.length !outstanding)
        (Unix.gettimeofday () -. t0);
    W.Star.mixed_txns star ~n:txns_per_round ~dim_fraction:0.05;
    (match
       C.Service.maintain service ~budget
         ~retry:(Roll_util.Retry.policy ~max_attempts:3 ())
     with
    | Ok _ -> ()
    | Error _ -> ());
    for c = 0 to clients - 1 do
      if (c + round) mod think_rounds = 0 then begin
        incr reads;
        let request =
          if Prng.chance rng fresh_fraction then S.Protocol.Read_fresh "star"
          else
            let now = Database.now db in
            S.Protocol.Read_at
              { view = "star"; time = max 0 (now - Prng.int rng recency) }
        in
        outstanding := (S.Engine.submit engine request, round) :: !outstanding
      end
    done;
    ignore (S.Engine.pump engine);
    collect round;
    Summary.add lag
      (float_of_int (Database.now db - C.Controller.hwm ctl))
  done;
  (* Catch-up: drain until every outstanding read resolves (their targets
     are all <= now, so full coverage serves them). The attempt cap is a
     safety net; if it trips, the censored reads are recorded at their
     final observed wait so saturation shows in the tail, not silently. *)
  let attempts = ref 0 in
  while !outstanding <> [] && !attempts < 500 do
    incr attempts;
    (match C.Service.maintain service ~budget with
    | Ok _ -> ()
    | Error _ -> ());
    ignore (S.Engine.pump engine);
    collect (rounds + !attempts)
  done;
  if !outstanding <> [] then begin
    Printf.printf "  serve: WARNING shed %d unresolved reads (catch-up cap)\n%!"
      (List.length !outstanding);
    List.iter
      (fun (_, round0) ->
        Summary.add wait_rounds (float_of_int (rounds + !attempts - round0));
        incr queued)
      !outstanding;
    outstanding := []
  end;
  C.Service.shutdown service;
  let wall_s = Unix.gettimeofday () -. t0 in
  let pct s p = if Summary.count s = 0 then 0.0 else Summary.percentile s p in
  {
    clients;
    txns_per_round;
    rounds;
    reads = !reads;
    queued = !queued;
    rejected = !rejected;
    wait_p50_ms = pct waits 0.5 *. 1000.0;
    wait_p95_ms = pct waits 0.95 *. 1000.0;
    wait_p99_ms = pct waits 0.99 *. 1000.0;
    wait_rounds_p95 = pct wait_rounds 0.95;
    staleness_p50 = pct stale 0.5;
    staleness_p95 = pct stale 0.95;
    lag_mean = Summary.mean lag;
    wall_s;
  }

let json_of_point p =
  Printf.sprintf
    "    {\"clients\": %d, \"update_rate\": %d, \"rounds\": %d, \"reads\": \
     %d, \"queued\": %d, \"rejected\": %d, \"wait_p50_ms\": %.3f, \
     \"wait_p95_ms\": %.3f, \"wait_p99_ms\": %.3f, \"wait_rounds_p95\": \
     %.1f, \"staleness_p50\": %.1f, \"staleness_p95\": %.1f, \"lag_mean\": \
     %.1f, \"wall_s\": %.2f}"
    p.clients p.txns_per_round p.rounds p.reads p.queued p.rejected
    p.wait_p50_ms p.wait_p95_ms p.wait_p99_ms p.wait_rounds_p95
    p.staleness_p50 p.staleness_p95 p.lag_mean p.wall_s

let json_of_model ~clients ~update_rate (r : Roll_sim.Readsim.result) =
  Printf.sprintf
    "    {\"clients\": %d, \"update_rate\": %d, \"reads\": %d, \"queued\": \
     %d, \"wait_p50_s\": %.3f, \"wait_p95_s\": %.3f, \"wait_p99_s\": %.3f, \
     \"staleness_p50\": %.1f, \"staleness_p95\": %.1f, \"lag_mean\": %.1f, \
     \"saturated\": %b}"
    clients update_rate r.Roll_sim.Readsim.reads r.Roll_sim.Readsim.queued
    r.Roll_sim.Readsim.wait_p50 r.Roll_sim.Readsim.wait_p95
    r.Roll_sim.Readsim.wait_p99 r.Roll_sim.Readsim.staleness_p50
    r.Roll_sim.Readsim.staleness_p95 r.Roll_sim.Readsim.lag_mean
    r.Roll_sim.Readsim.saturated

let client_counts = [ 200; 1000; 4000 ]

let update_rates = [ 25; 100; 200 ]

let rounds = 20

let run () =
  let grid =
    List.concat_map
      (fun clients ->
        List.map
          (fun txns_per_round ->
            let p = run_point ~clients ~txns_per_round ~rounds in
            Printf.printf
              "  serve: clients=%d rate=%d  wait p95 %.1fms (%.1f rounds)  \
               staleness p95 %.0f  lag %.0f  queued %d/%d\n%!"
              p.clients p.txns_per_round p.wait_p95_ms p.wait_rounds_p95
              p.staleness_p95 p.lag_mean p.queued p.reads;
            p)
          update_rates)
      client_counts
  in
  (* Matched fluid-model points: one simulated second per round. *)
  let model =
    List.concat_map
      (fun clients ->
        List.map
          (fun update_rate ->
            let r =
              Roll_sim.Readsim.run
                {
                  Roll_sim.Readsim.default_config with
                  duration = float_of_int rounds;
                  update_rate = float_of_int update_rate;
                  drain_rate = float_of_int budget;
                  step_commits = float_of_int fact_interval;
                  clients;
                  think_time = float_of_int think_rounds;
                  recency = float_of_int recency;
                  fresh_fraction;
                }
            in
            (clients, update_rate, r))
          update_rates)
      client_counts
  in
  (* The knee: per client count, the first update rate where the p95 wait
     spans at least one full drain round — reads start outliving the
     drain cycle that admitted them. *)
  let knees =
    List.filter_map
      (fun clients ->
        List.find_opt
          (fun p -> p.clients = clients && p.wait_rounds_p95 >= 1.0)
          grid
        |> Option.map (fun p ->
               Printf.sprintf
                 "    {\"clients\": %d, \"update_rate\": %d, \
                  \"wait_rounds_p95\": %.1f}"
                 p.clients p.txns_per_round p.wait_rounds_p95))
      client_counts
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc
    ("{\n  \"benchmark\": \"serve\",\n  " ^ Exp_common.meta_json () ^ ",\n");
  output_string oc
    (Printf.sprintf
       "  \"budget\": %d, \"fact_interval\": %d, \"think_rounds\": %d, \
        \"recency\": %d, \"fresh_fraction\": %.2f,\n"
       budget fact_interval think_rounds recency fresh_fraction);
  output_string oc "  \"grid\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_point grid));
  output_string oc "\n  ],\n  \"model\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.map (fun (c, u, r) -> json_of_model ~clients:c ~update_rate:u r)
          model));
  output_string oc "\n  ],\n  \"knee\": [\n";
  output_string oc (String.concat ",\n" knees);
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote BENCH_serve.json\n"
