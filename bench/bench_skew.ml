(* Skew sweep (experiment A10): heavy-light partitioning vs the pure-lazy
   path over the star workload, sweeping [zipf_theta].

   The star view's fact table is the hotset's candidate source (it feeds
   every join atom), partitioned on the first dimension key — the column
   the workload skews. At low theta updates spread across the key domain
   and the partition stays mostly light; at high theta a few heavy keys
   absorb most of the update stream, so their per-key partials and the
   nearly-quiescent light residual replace full-width reads of the fact
   relation in the propagation plans. Both modes drain identically-seeded
   streams and must produce oracle-checked, bit-identical view contents at
   every sweep point. Writes BENCH_skew.json. *)

module Prng = Roll_util.Prng
module Tablefmt = Roll_util.Tablefmt
module Relation = Roll_relation.Relation
module Star = Roll_workload.Star
module C = Roll_core

let thetas = [ 0.2; 0.8; 1.4 ]

let fact_initial = 4_000

let dim_size = 64

let churn_rounds = 24

let txns_per_round = 12

type point = {
  theta : float;
  hotset : bool;
  queries : int;
  rows_read : int;
  rows_per_query : float;
  wall_s : float;
  hot_hits : int;
  hot_misses : int;
  heavy_keys : int;
  view_rows : int;
  oracle_ok : bool;
  contents : Relation.t;
}

let run_point ~hotset ~theta =
  let star =
    Star.create
      {
        Star.default_config with
        n_dimensions = 2;
        dim_size;
        fact_initial;
        zipf_theta = theta;
        seed = 47;
      }
  in
  Star.load_initial star;
  let db = Star.db star and capture = Star.capture star in
  let service = C.Service.create ~hotset ~default_sla:500 db capture in
  let ctl =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 8))
      (Star.view star)
  in
  (* Catch up on the initial load outside the measured window; the second
     drain starts at a quiet point, so the registry can promote whatever
     the load already skewed. *)
  ignore (C.Service.step_all service ~budget:max_int);
  ignore (C.Service.step_all service ~budget:max_int);
  C.Service.refresh_all service;
  (* Propagate cost counts the whole fleet: user view plus every heavy
     partial the hotset maintains — the eager path pays for its own
     upkeep inside the same counters. *)
  let fleet_stats () =
    let heavies =
      match C.Service.hotset service with
      | None -> []
      | Some reg ->
          List.map
            (fun he -> C.Controller.stats (C.Hotset.controller he))
            (C.Hotset.entries reg)
    in
    C.Controller.stats ctl :: heavies
  in
  let total f = List.fold_left (fun acc st -> acc + f st) 0 (fleet_stats ()) in
  let q0 = total C.Stats.queries and r0 = total C.Stats.rows_read in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to churn_rounds do
    Star.mixed_txns star ~n:txns_per_round ~dim_fraction:0.3;
    ignore (C.Service.step_all service ~budget:max_int);
    ignore (C.Service.step_all service ~budget:max_int)
  done;
  C.Service.refresh_all service;
  let wall_s = Unix.gettimeofday () -. t0 in
  let queries = total C.Stats.queries - q0 in
  let rows_read = total C.Stats.rows_read - r0 in
  let stats = C.Controller.stats ctl in
  let contents = C.Controller.contents ctl in
  let oracle_ok =
    Relation.equal
      (C.Oracle.view_at (Star.history star) (Star.view star)
         (C.Controller.as_of ctl))
      contents
  in
  let heavy_keys =
    match C.Service.hotset service with
    | None -> 0
    | Some reg -> List.length (C.Hotset.entries reg)
  in
  let point =
    {
      theta;
      hotset;
      queries;
      rows_read;
      rows_per_query =
        (if queries > 0 then float_of_int rows_read /. float_of_int queries
         else 0.);
      wall_s;
      hot_hits = C.Stats.hot_hits stats;
      hot_misses = C.Stats.hot_misses stats;
      heavy_keys;
      view_rows = Relation.distinct_count contents;
      oracle_ok;
      contents;
    }
  in
  C.Service.shutdown service;
  point

let json_of_point p identical =
  Printf.sprintf
    "    {\"zipf_theta\": %.2f, \"hotset\": %b, \"queries\": %d, \
     \"rows_read\": %d, \"rows_per_query\": %.2f,\n\
     \     \"wall_s\": %.4f, \"hot_hits\": %d, \"hot_misses\": %d, \
     \"heavy_keys\": %d, \"view_rows\": %d, \"oracle_ok\": %b, \
     \"contents_identical\": %b}"
    p.theta p.hotset p.queries p.rows_read p.rows_per_query p.wall_s
    p.hot_hits p.hot_misses p.heavy_keys p.view_rows p.oracle_ok identical

let run () =
  let pairs =
    List.map
      (fun theta ->
        let on = run_point ~hotset:true ~theta in
        let off = run_point ~hotset:false ~theta in
        (on, off))
      thetas
  in
  let die what =
    Printf.printf "!! skew bench FAILED: %s\n" what;
    exit 1
  in
  List.iter
    (fun (on, off) ->
      if not (on.oracle_ok && off.oracle_ok) then
        die (Printf.sprintf "oracle mismatch at theta=%.2f" on.theta);
      if not (Relation.equal on.contents off.contents) then
        die
          (Printf.sprintf "hotset on/off contents differ at theta=%.2f"
             on.theta))
    pairs;
  (* The headline shape: at high skew the partition concentrates on a few
     heavy keys and the substituted plans beat pure-lazy propagate cost;
     at low skew the subsystem must not have promoted a spurious hot set. *)
  let high_on, high_off =
    List.nth pairs (List.length pairs - 1)
  in
  if high_on.heavy_keys = 0 then
    die "no heavy keys at the highest skew";
  if high_on.hot_hits = 0 then
    die "heavy-light substitution never fired at the highest skew";
  if high_on.rows_per_query >= high_off.rows_per_query then
    die
      (Printf.sprintf
         "heavy-light did not beat pure-lazy at theta=%.2f (%.1f vs %.1f \
          rows/query)"
         high_on.theta high_on.rows_per_query high_off.rows_per_query);
  Tablefmt.print ~title:"skew sweep (star, hotset on/off)"
    ~header:
      [
        "theta"; "mode"; "queries"; "rows read"; "rows/query"; "wall s";
        "hot h/m"; "heavy";
      ]
    (List.concat_map
       (fun (on, off) ->
         List.map
           (fun p ->
             [
               Printf.sprintf "%.2f" p.theta;
               (if p.hotset then "hotset" else "lazy");
               string_of_int p.queries;
               string_of_int p.rows_read;
               Printf.sprintf "%.1f" p.rows_per_query;
               Printf.sprintf "%.3f" p.wall_s;
               Printf.sprintf "%d/%d" p.hot_hits p.hot_misses;
               string_of_int p.heavy_keys;
             ])
           [ on; off ])
       pairs);
  Printf.printf
    "  at theta %.2f: %.1f rows/query with the hotset vs %.1f pure-lazy\n"
    high_on.theta high_on.rows_per_query high_off.rows_per_query;
  let path = "BENCH_skew.json" in
  let oc = open_out path in
  output_string oc
    ("{\n  \"benchmark\": \"skew\",\n  " ^ Exp_common.meta_json () ^ ",\n");
  output_string oc
    (Printf.sprintf
       "  \"fact_initial\": %d, \"dim_size\": %d, \"churn_txns\": %d,\n"
       fact_initial dim_size (churn_rounds * txns_per_round));
  output_string oc "  \"points\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.concat_map
          (fun (on, off) ->
            let identical = Relation.equal on.contents off.contents in
            [ json_of_point on identical; json_of_point off identical ])
          pairs));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" path
