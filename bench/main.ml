(* The benchmark/experiment harness: one executable regenerating every
   figure-level experiment (see DESIGN.md section 6) plus bechamel
   microbenchmarks.

     dune exec bench/main.exe                # everything
     dune exec bench/main.exe -- fig5 claim  # only matching experiments
     dune exec bench/main.exe -- --list
*)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--list" args then begin
    List.iter (fun (name, _) -> print_endline name) Experiments.all;
    print_endline "micro";
    print_endline "json";
    print_endline "sched";
    print_endline "share"
  end
  else begin
    let wanted name =
      args = []
      || List.exists
           (fun pat ->
             String.length pat <= String.length name
             && String.sub name 0 (String.length pat) = pat)
           args
    in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (name, f) ->
        if wanted name then begin
          let t = Unix.gettimeofday () in
          f ();
          Printf.printf "[%s: %.1fs]\n%!" name (Unix.gettimeofday () -. t)
        end)
      Experiments.all;
    if wanted "micro" then Micro.run ();
    if wanted "json" then begin
      let t = Unix.gettimeofday () in
      Bench_json.run ();
      Printf.printf "[json: %.1fs]\n%!" (Unix.gettimeofday () -. t)
    end;
    if wanted "sched" then begin
      let t = Unix.gettimeofday () in
      Bench_sched.run ();
      Printf.printf "[sched: %.1fs]\n%!" (Unix.gettimeofday () -. t)
    end;
    if wanted "share" then begin
      let t = Unix.gettimeofday () in
      Bench_share.run ();
      Printf.printf "[share: %.1fs]\n%!" (Unix.gettimeofday () -. t)
    end;
    Printf.printf "\ntotal: %.1fs\n" (Unix.gettimeofday () -. t0)
  end
