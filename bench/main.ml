(* The benchmark/experiment harness: one executable regenerating every
   figure-level experiment (see DESIGN.md section 6) plus bechamel
   microbenchmarks.

     dune exec bench/main.exe                # everything
     dune exec bench/main.exe -- fig5 claim  # only matching experiments
     dune exec bench/main.exe -- --list
*)

(* Harness timing goes through the injectable Rollscope clock — the same
   source the instrumented maintenance path reads (DESIGN.md section 14). *)
let clock = Roll_obs.Clock.real ()

let now () = Roll_obs.Clock.now clock

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--list" args then begin
    List.iter (fun (name, _) -> print_endline name) Experiments.all;
    print_endline "micro";
    print_endline "json";
    print_endline "sched";
    print_endline "serve";
    print_endline "share";
    print_endline "obs";
    print_endline "storage";
    print_endline "higher_order";
    print_endline "skew"
  end
  else begin
    let wanted name =
      args = []
      || List.exists
           (fun pat ->
             String.length pat <= String.length name
             && String.sub name 0 (String.length pat) = pat)
           args
    in
    let timed name f =
      let t = now () in
      f ();
      Printf.printf "[%s: %.1fs]\n%!" name (now () -. t)
    in
    let t0 = now () in
    List.iter
      (fun (name, f) -> if wanted name then timed name f)
      Experiments.all;
    if wanted "micro" then Micro.run ();
    if wanted "json" then timed "json" Bench_json.run;
    if wanted "sched" then timed "sched" Bench_sched.run;
    if wanted "serve" then timed "serve" Bench_serve.run;
    if wanted "share" then timed "share" Bench_share.run;
    if wanted "obs" then timed "obs" Bench_obs.run;
    if wanted "storage" then timed "storage" Bench_storage.run;
    if wanted "higher_order" then timed "higher_order" Bench_higher.run;
    if wanted "skew" then timed "skew" Bench_skew.run;
    Printf.printf "\ntotal: %.1fs\n" (now () -. t0)
  end
