(* Cross-view sharing benchmark: four sibling views over one star schema
   (two alias-renamed twins per dimension, all reading the same fact delta
   windows), maintained once with the service's sharing memo and once
   independently over an identically-seeded scenario. Writes
   BENCH_sharing.json with per-mode executor counters so the shared run's
   savings (memoized deltas, shared hash builds, batched steps) can be
   tracked across revisions. Maintained contents must be identical in both
   modes and match the oracle — sharing changes which physical queries run,
   never the result. *)

module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Relation = Roll_relation.Relation
module Tablefmt = Roll_util.Tablefmt
module C = Roll_core
module W = Roll_workload

let star_config = { W.Star.default_config with n_dimensions = 2; seed = 23 }

(* Per dimension, two views identical up to alias renaming: the canonical
   signature makes each pair one memo identity, while all four share the
   fact table's delta windows and builds. *)
let sibling_views star =
  let db = W.Star.db star in
  let fact = W.Star.fact_table star in
  let mk name ~dim ~fact_alias ~dim_alias =
    let sources = [ (fact, fact_alias); (W.Star.dim_table star dim, dim_alias) ] in
    let b = C.View.binder db sources in
    C.View.create db ~name ~sources
      ~predicate:
        [
          Roll_relation.Predicate.join
            (b fact_alias (Printf.sprintf "d%d_key" dim))
            (b dim_alias "key");
        ]
      ~project:[ b fact_alias "measure"; b dim_alias "key"; b dim_alias "attr" ]
  in
  [
    mk "share_a" ~dim:0 ~fact_alias:"f" ~dim_alias:"d";
    mk "share_b" ~dim:0 ~fact_alias:"ff" ~dim_alias:"dd";
    mk "share_c" ~dim:1 ~fact_alias:"f" ~dim_alias:"d";
    mk "share_d" ~dim:1 ~fact_alias:"g" ~dim_alias:"e";
  ]

type mode_result = {
  label : string;
  queries : int;
  rows_read : int;
  rows_scanned : int;
  rows_probed : int;
  hash_builds : int;
  memo_hits : int;
  memo_misses : int;
  shared_builds : int;
  batched : int;
  propagate_ran : int;
  contents : (string * Relation.t) list;  (** by view name *)
  oracle_ok : bool;
}

let run_mode ~sharing ~label =
  let star = W.Star.create star_config in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service = C.Service.create ~sharing db (W.Star.capture star) in
  let views = sibling_views star in
  let controllers =
    List.map
      (fun v ->
        ( C.View.name v,
          C.Service.register service
            ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 8; 8 |]))
            v ))
      views
  in
  for _ = 1 to 6 do
    W.Star.mixed_txns star ~n:60 ~dim_fraction:0.2;
    match C.Service.maintain service ~budget:500 with
    | Ok _ -> ()
    | Error (e : C.Service.step_error) ->
        failwith (Printf.sprintf "maintain failed: %s at %s" e.view e.point)
  done;
  C.Service.refresh_all service;
  let history = W.Star.history star in
  let oracle_ok =
    List.for_all2
      (fun v (_, ctl) ->
        Relation.equal
          (C.Oracle.view_at history v (C.Controller.as_of ctl))
          (C.Controller.contents ctl))
      views controllers
  in
  let sum f =
    List.fold_left (fun acc (_, ctl) -> acc + f (C.Controller.stats ctl)) 0
      controllers
  in
  let sched = C.Scheduler.stats (C.Service.scheduler service) in
  let propagate = C.Stats.sched_kind sched "propagate" in
  {
    label;
    queries = sum C.Stats.queries;
    rows_read = sum C.Stats.rows_read;
    rows_scanned = sum C.Stats.rows_scanned;
    rows_probed = sum C.Stats.rows_probed;
    hash_builds = sum C.Stats.hash_builds;
    memo_hits = sum C.Stats.memo_hits;
    memo_misses = sum C.Stats.memo_misses;
    shared_builds = sum C.Stats.shared_builds;
    batched = propagate.C.Stats.batched;
    propagate_ran = propagate.C.Stats.ran;
    contents =
      List.map (fun (name, ctl) -> (name, C.Controller.contents ctl)) controllers;
    oracle_ok;
  }

let json_of_mode m contents_identical =
  Printf.sprintf
    "    {\"mode\": \"%s\", \"queries\": %d, \"rows_read\": %d, \
     \"rows_scanned\": %d, \"rows_probed\": %d, \"hash_builds\": %d,\n\
     \     \"memo_hits\": %d, \"memo_misses\": %d, \"shared_builds\": %d, \
     \"batched\": %d, \"propagate_ran\": %d,\n\
     \     \"oracle_ok\": %b, \"contents_identical\": %b}"
    m.label m.queries m.rows_read m.rows_scanned m.rows_probed m.hash_builds
    m.memo_hits m.memo_misses m.shared_builds m.batched m.propagate_ran
    m.oracle_ok contents_identical

let run () =
  let shared = run_mode ~sharing:true ~label:"shared" in
  let independent = run_mode ~sharing:false ~label:"independent" in
  let contents_identical =
    List.for_all2
      (fun (name_s, rel_s) (name_i, rel_i) ->
        String.equal name_s name_i && Relation.equal rel_s rel_i)
      shared.contents independent.contents
  in
  let die what = Printf.printf "!! sharing bench FAILED: %s\n" what; exit 1 in
  if not (shared.oracle_ok && independent.oracle_ok) then die "oracle mismatch";
  if not contents_identical then die "shared and independent contents differ";
  if shared.memo_hits = 0 then die "shared mode recorded no memo hits";
  if shared.queries >= independent.queries then
    die "sharing did not reduce executed queries";
  if shared.rows_read >= independent.rows_read then
    die "sharing did not reduce executor rows";
  Tablefmt.print ~title:"cross-view sharing (4 sibling views, star workload)"
    ~header:
      [
        "mode"; "queries"; "rows read"; "scanned"; "probed"; "hash builds";
        "memo h/m"; "shared"; "batched";
      ]
    (List.map
       (fun m ->
         [
           m.label;
           string_of_int m.queries;
           string_of_int m.rows_read;
           string_of_int m.rows_scanned;
           string_of_int m.rows_probed;
           string_of_int m.hash_builds;
           Printf.sprintf "%d/%d" m.memo_hits m.memo_misses;
           string_of_int m.shared_builds;
           string_of_int m.batched;
         ])
       [ shared; independent ]);
  Printf.printf "  contents identical across modes and vs oracle: ok\n";
  let path = "BENCH_sharing.json" in
  let oc = open_out path in
  output_string oc
    ("{\n  \"benchmark\": \"sharing\",\n  " ^ Exp_common.meta_json ()
   ^ ",\n  \"modes\": [\n");
  output_string oc
    (String.concat ",\n"
       (List.map (fun m -> json_of_mode m contents_identical) [ shared; independent ]));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" path
