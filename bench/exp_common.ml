(* Shared machinery for the experiment harness: timing, reporting, and
   scenario shorthands. Every experiment prints one labelled table; the
   shapes (who wins, by what factor) are what reproduce the paper's
   figures — absolute numbers depend on this substrate. *)

module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Tablefmt = Roll_util.Tablefmt
module Summary = Roll_util.Summary
module Prng = Roll_util.Prng
module C = Roll_core
module W = Roll_workload

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let ms seconds = Printf.sprintf "%.1f" (seconds *. 1000.0)

let table = Tablefmt.print

(* Footprint helpers. *)
let txn_row_sizes stats =
  let s = Summary.create () in
  List.iter
    (fun (fp : C.Stats.footprint) ->
      let rows = List.fold_left (fun acc (_, n) -> acc + n) 0 fp.C.Stats.reads in
      Summary.add s (float_of_int rows))
    (C.Stats.footprints stats);
  s

(* Provenance header shared by every BENCH_*.json writer: which commit,
   when, and under which runtime knobs the numbers were taken. Emitted as
   one `"meta": {...}` member so downstream figure scripts can refuse to
   mix points from different configurations. *)
let meta_json () =
  let commit =
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let env name fallback =
    match Sys.getenv_opt name with Some v when v <> "" -> v | _ -> fallback
  in
  Printf.sprintf
    {|"meta": {"commit": %S, "date": %S, "roll_domains": %S, "roll_store": %S}|}
    commit date
    (env "ROLL_DOMAINS" "1")
    (env "ROLL_STORE" "mem")

let check_or_die what = function
  | Ok () -> ()
  | Error msg ->
      Printf.printf "!! %s FAILED: %s\n" what msg;
      exit 1

(* A fresh n-way scenario with churn already applied. *)
let churned_nway ?(key_range = 10) ?(initial_rows = 60) ?weights ~n ~txns ~seed () =
  let w = W.Nway.create (W.Nway.config ?weights ~key_range ~initial_rows ~seed ~n ()) in
  W.Nway.load_initial w;
  W.Nway.churn w ~n:txns;
  w

let ctx_for w = C.Ctx.create ~t_initial:Time.origin (W.Nway.db w) (W.Nway.capture w) (W.Nway.view w)
