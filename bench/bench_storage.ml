(* Experiment A8 — the paged store under memory pressure: drain a star
   workload ten times the executor benchmark's scale on ROLL_STORE=disk
   with block caches smaller than the data file, and record how the hit
   ratio and drain throughput move as the cache grows. Writes
   BENCH_storage.json; the interesting shape is throughput recovering
   toward the largest-cache point as the working set becomes resident. *)

module Time = Roll_delta.Time
module Database = Roll_storage.Database
module Store = Roll_storage.Store
module Block_cache = Roll_storage.Block_cache
module Pager = Roll_storage.Pager
module C = Roll_core
module W = Roll_workload

(* ROLL_BENCH_SCALE multiplies the workload's row counts (initial fact
   rows, dimension size, churn transactions) AND the cache grid, so
   `ROLL_BENCH_SCALE=10 bench storage` runs the same experiment on a
   10-100x workload at the same cache-residency fractions — the sweep is
   about relative memory pressure, and scaling the data without the cache
   would just pin every point at the thrashing floor. Unset or 1 is the
   historical scale. *)
let scale =
  match Sys.getenv_opt "ROLL_BENCH_SCALE" with
  | None | Some "" -> 1
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> n
      | _ -> failwith "bench storage: ROLL_BENCH_SCALE must be a positive int")

(* 10x the scale BENCH_executor.json's star measurements run at. *)
let star_config =
  {
    W.Star.default_config with
    fact_initial = 20_000 * scale;
    dim_size = 400 * scale;
    seed = 99;
  }

let drain_txns = 2_000 * scale

type point = {
  cache_pages : int;
  policy : string;
  data_pages : int;
  hit_ratio : float;
  resident : int;
  evictions : int;
  page_reads : int;
  page_writes : int;
  drain_s : float;
  steps : int;
  rows : int;  (** final view cardinality — must agree across points *)
}

(* One full build-churn-drain cycle against a fresh disk store whose
   cache is capped at [cache_pages]. The store mode and cache size ride
   the environment because the workload builds its own database. *)
let run_point ~cache_pages ~policy =
  Unix.putenv "ROLL_STORE" "disk";
  Unix.putenv "ROLL_CACHE_PAGES" (string_of_int cache_pages);
  Unix.putenv "ROLL_STORE_POLICY" policy;
  let star = W.Star.create star_config in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service =
    C.Service.create ~default_sla:50 db (W.Star.capture star)
  in
  let ctl =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 16; 64; 64 |]))
      (W.Star.view star)
  in
  W.Star.mixed_txns star ~n:drain_txns ~dim_fraction:0.05;
  let data_now = Database.now db in
  let store =
    match Database.store db with
    | Some s -> s
    | None -> failwith "bench storage: expected a disk-backed database"
  in
  let t0 = Unix.gettimeofday () in
  let steps = C.Service.step_all service ~budget:max_int in
  let drain_s = Unix.gettimeofday () -. t0 in
  C.Controller.refresh_to ctl data_now;
  let rows = Roll_relation.Relation.distinct_count (C.Controller.contents ctl) in
  Database.sync db;
  let pager = Store.pager store in
  let cache = Store.cache store in
  let point =
    {
      cache_pages;
      policy;
      data_pages = Pager.n_pages pager;
      hit_ratio = Block_cache.hit_ratio cache;
      resident = Block_cache.resident cache;
      evictions = Block_cache.evictions cache;
      page_reads = Pager.page_reads pager;
      page_writes = Pager.page_writes pager;
      drain_s;
      steps;
      rows;
    }
  in
  C.Service.shutdown service;
  point

let json_of_point p =
  Printf.sprintf
    "    {\"cache_pages\": %d, \"policy\": \"%s\", \"data_pages\": %d, \
     \"hit_ratio\": %.4f, \"resident_pages\": %d, \"evictions\": %d, \
     \"page_reads\": %d, \"page_writes\": %d, \"drain_s\": %.4f, \
     \"steps\": %d, \"txns_per_sec\": %.1f, \"rows\": %d}"
    p.cache_pages p.policy p.data_pages p.hit_ratio p.resident p.evictions
    p.page_reads p.page_writes p.drain_s p.steps
    (if p.drain_s > 0. then float_of_int drain_txns /. p.drain_s else 0.)
    p.rows

let run () =
  let saved_store = Sys.getenv_opt "ROLL_STORE" in
  let saved_cache = Sys.getenv_opt "ROLL_CACHE_PAGES" in
  let saved_policy = Sys.getenv_opt "ROLL_STORE_POLICY" in
  let restore () =
    let back name = function
      | Some v -> Unix.putenv name v
      | None -> Unix.putenv name ""
    in
    back "ROLL_STORE" saved_store;
    back "ROLL_CACHE_PAGES" saved_cache;
    back "ROLL_STORE_POLICY" saved_policy
  in
  Fun.protect ~finally:restore (fun () ->
      let points =
        List.map
          (fun (cache_pages, policy) ->
            run_point ~cache_pages:(cache_pages * scale) ~policy)
          [
            (64, "lru");
            (128, "lru");
            (256, "lru");
            (512, "lru");
            (1024, "lru");
            (128, "clock");
          ]
      in
      (* Every point drained the same deterministic workload; diverging
         contents would mean the paged store corrupted the view. *)
      (match points with
      | first :: rest ->
          List.iter
            (fun p ->
              if p.rows <> first.rows then begin
                Printf.printf "!! bench storage: rows diverge across caches\n";
                exit 1
              end)
            rest
      | [] -> ());
      let path = "BENCH_storage.json" in
      let oc = open_out path in
      output_string oc
        ("{\n  \"benchmark\": \"storage\",\n  " ^ Exp_common.meta_json ()
       ^ ",\n");
      output_string oc
        (Printf.sprintf
           "  \"workload\": \"star\", \"fact_initial\": %d, \"txns\": %d, \
            \"scale\": %d,\n"
           star_config.W.Star.fact_initial drain_txns scale);
      output_string oc "  \"points\": [\n";
      output_string oc (String.concat ",\n" (List.map json_of_point points));
      output_string oc "\n  ]\n}\n";
      close_out oc;
      List.iter
        (fun p ->
          Printf.printf
            "  cache=%4d (%5s): hit %.3f, %d/%d pages resident, drain %.3fs \
             (%.0f txn/s)\n"
            p.cache_pages p.policy p.hit_ratio p.resident p.data_pages
            p.drain_s
            (if p.drain_s > 0. then float_of_int drain_txns /. p.drain_s
             else 0.))
        points;
      Printf.printf "  wrote %s\n" path)
