(* Higher-order delta benchmark: per-step propagation cost against a
   growing base relation, with the compensation partial materialized as an
   auxiliary view vs. recomputed from the base every step.

   The view is fact(k,v,tag) ⋈ dim(k,w) with a 1%-selective local filter
   on fact (tag >= 990). Every dimension-window forward query reads fact
   as a Base term; without auxiliaries that read scans the whole fact
   table, so per-step cost grows linearly as fact grows 10x. With
   auxiliaries the read probes the maintained mirror of
   π_{k,v}(σ_{tag>=990}(fact)) — about 1% of the base — and per-step cost
   stays flat. Both modes drain an identically-seeded update stream and
   must produce bit-identical view contents that match the oracle at every
   measured size. Per-step cost includes the cost of maintaining the
   auxiliary itself (its controller's queries and rows ride the same
   counters). Writes BENCH_higher_order.json. *)

module Prng = Roll_util.Prng
module Database = Roll_storage.Database
module History = Roll_storage.History
module Capture = Roll_capture.Capture
module Relation = Roll_relation.Relation
module Schema = Roll_relation.Schema
module Value = Roll_relation.Value
module Tuple = Roll_relation.Tuple
module Predicate = Roll_relation.Predicate
module Tablefmt = Roll_util.Tablefmt
module C = Roll_core

(* fact grows 10x across the measured points; dim stays fixed, so the
   change stream the steps process is the same size at every point. *)
let fact_sizes = [ 2_000; 6_000; 20_000 ]

let dim_rows = 200

let key_domain = 200

let tag_domain = 1_000

let hot_tag = 990 (* σ(tag >= 990): the auxiliary holds ~1% of fact *)

let churn_rounds = 30

let txns_per_round = 10

type scenario = {
  db : Database.t;
  capture : Capture.t;
  history : History.t;
  view : C.View.t;
  rng : Prng.t;
  dim_w : int array;
}

let int_col name = { Schema.name; ty = Value.T_int }

let scenario ~fact_rows =
  let db = Database.create () in
  let _ =
    Database.create_table db ~name:"fact"
      (Schema.make [ int_col "k"; int_col "v"; int_col "tag" ])
  in
  let _ =
    Database.create_table db ~name:"dim"
      (Schema.make [ int_col "k"; int_col "w" ])
  in
  let capture = Capture.create db in
  Capture.attach capture ~table:"fact";
  Capture.attach capture ~table:"dim";
  let history = History.create db in
  let b = C.View.binder db [ ("fact", "f"); ("dim", "d") ] in
  let view =
    C.View.create db ~name:"hot"
      ~sources:[ ("fact", "f"); ("dim", "d") ]
      ~predicate:
        [
          Predicate.join (b "f" "k") (b "d" "k");
          Predicate.cmp Predicate.Ge
            (Predicate.Col (b "f" "tag"))
            (Predicate.Const (Value.Int hot_tag));
        ]
      ~project:[ b "f" "k"; b "f" "v"; b "d" "w" ]
  in
  let rng = Prng.create ~seed:31 in
  let dim_w = Array.init key_domain (fun _ -> Prng.int rng tag_domain) in
  ignore
    (Database.run db (fun txn ->
         Array.iteri
           (fun k w -> Database.insert txn ~table:"dim" (Tuple.ints [ k; w ]))
           dim_w));
  let batch = 200 in
  let loaded = ref 0 in
  while !loaded < fact_rows do
    let n = min batch (fact_rows - !loaded) in
    ignore
      (Database.run db (fun txn ->
           for _ = 1 to n do
             Database.insert txn ~table:"fact"
               (Tuple.ints
                  [
                    Prng.int rng key_domain;
                    Prng.int rng tag_domain;
                    Prng.int rng tag_domain;
                  ])
           done));
    loaded := !loaded + n
  done;
  { db; capture; history; view; rng; dim_w }

(* The measured stream: mostly dimension updates (whose forward queries
   read fact as a Base term — the substitution site), with enough fact
   churn that the auxiliary does real maintenance work along the way. *)
let churn_txn s =
  if Prng.int s.rng 10 = 0 then
    ignore
      (Database.run s.db (fun txn ->
           Database.insert txn ~table:"fact"
             (Tuple.ints
                [
                  Prng.int s.rng key_domain;
                  Prng.int s.rng tag_domain;
                  Prng.int s.rng tag_domain;
                ])))
  else begin
    let k = Prng.int s.rng key_domain in
    let w' = Prng.int s.rng tag_domain in
    ignore
      (Database.run s.db (fun txn ->
           Database.delete txn ~table:"dim" (Tuple.ints [ k; s.dim_w.(k) ]);
           Database.insert txn ~table:"dim" (Tuple.ints [ k; w' ])));
    s.dim_w.(k) <- w'
  end

type point = {
  fact_rows : int;
  aux : bool;
  queries : int;  (** propagate queries during the measured churn *)
  rows_read : int;  (** executor rows, user view + auxiliaries *)
  rows_per_query : float;
  wall_s : float;
  aux_hits : int;
  aux_misses : int;
  view_rows : int;
  oracle_ok : bool;
  contents : Relation.t;
}

let run_point ~aux ~fact_rows =
  let s = scenario ~fact_rows in
  let service = C.Service.create ~auxiliary:aux s.db s.capture in
  let ctl =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.uniform 8))
      s.view
  in
  (* Catch up on the initial load outside the measured window, leaving
     the auxiliary fresh. *)
  ignore (C.Service.step_all service ~budget:max_int);
  C.Service.refresh_all service;
  let aux_stats =
    match C.Service.auxiliary service with
    | None -> []
    | Some reg ->
        List.map
          (fun ae -> C.Controller.stats (C.Auxiliary.controller ae))
          (C.Auxiliary.entries reg)
  in
  let stats = C.Controller.stats ctl in
  let total f = List.fold_left (fun acc st -> acc + f st) (f stats) aux_stats in
  let q0 = total C.Stats.queries and r0 = total C.Stats.rows_read in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to churn_rounds do
    for _ = 1 to txns_per_round do
      churn_txn s
    done;
    ignore (C.Service.step_all service ~budget:max_int)
  done;
  C.Service.refresh_all service;
  let wall_s = Unix.gettimeofday () -. t0 in
  let queries = C.Stats.queries stats + List.fold_left (fun a st -> a + C.Stats.queries st) 0 aux_stats - q0 in
  let rows_read = total C.Stats.rows_read - r0 in
  let contents = C.Controller.contents ctl in
  let oracle_ok =
    Relation.equal
      (C.Oracle.view_at s.history s.view (C.Controller.as_of ctl))
      contents
  in
  let point =
    {
      fact_rows;
      aux;
      queries;
      rows_read;
      rows_per_query =
        (if queries > 0 then float_of_int rows_read /. float_of_int queries
         else 0.);
      wall_s;
      aux_hits = C.Stats.aux_hits stats;
      aux_misses = C.Stats.aux_misses stats;
      view_rows = Relation.distinct_count contents;
      oracle_ok;
      contents;
    }
  in
  C.Service.shutdown service;
  point

let json_of_point p identical =
  Printf.sprintf
    "    {\"fact_rows\": %d, \"aux\": %b, \"queries\": %d, \"rows_read\": \
     %d, \"rows_per_query\": %.2f,\n\
     \     \"wall_s\": %.4f, \"aux_hits\": %d, \"aux_misses\": %d, \
     \"view_rows\": %d, \"oracle_ok\": %b, \"contents_identical\": %b}"
    p.fact_rows p.aux p.queries p.rows_read p.rows_per_query p.wall_s
    p.aux_hits p.aux_misses p.view_rows p.oracle_ok identical

let run () =
  let pairs =
    List.map
      (fun fact_rows ->
        let on = run_point ~aux:true ~fact_rows in
        let off = run_point ~aux:false ~fact_rows in
        (on, off))
      fact_sizes
  in
  let die what =
    Printf.printf "!! higher_order bench FAILED: %s\n" what;
    exit 1
  in
  List.iter
    (fun (on, off) ->
      if not (on.oracle_ok && off.oracle_ok) then
        die (Printf.sprintf "oracle mismatch at fact_rows=%d" on.fact_rows);
      if not (Relation.equal on.contents off.contents) then
        die
          (Printf.sprintf "aux on/off contents differ at fact_rows=%d"
             on.fact_rows);
      if on.aux_hits = 0 then
        die
          (Printf.sprintf "no mirror substitution at fact_rows=%d"
             on.fact_rows))
    pairs;
  (* The headline shape: per-step cost grows with the base when the
     partial is recomputed every step, and flattens when it is maintained
     as an auxiliary view. *)
  let rpq sel = List.map (fun pair -> (sel pair).rows_per_query) pairs in
  let growth = function
    | first :: _ as xs when first > 0. ->
        List.fold_left max first xs /. first
    | _ -> 0.
  in
  let on_growth = growth (rpq fst) and off_growth = growth (rpq snd) in
  if off_growth < 3.0 then
    die
      (Printf.sprintf
         "baseline per-step cost did not grow with the base (%.2fx over a \
          10x base)"
         off_growth);
  if on_growth > off_growth /. 2.0 then
    die
      (Printf.sprintf
         "auxiliary per-step cost did not flatten (%.2fx vs baseline %.2fx)"
         on_growth off_growth);
  Tablefmt.print
    ~title:"higher-order deltas (fact ⋈ dim, 1%-selective fact filter)"
    ~header:
      [
        "fact rows"; "mode"; "queries"; "rows read"; "rows/query"; "wall s";
        "aux h/m";
      ]
    (List.concat_map
       (fun (on, off) ->
         List.map
           (fun p ->
             [
               string_of_int p.fact_rows;
               (if p.aux then "aux" else "base");
               string_of_int p.queries;
               string_of_int p.rows_read;
               Printf.sprintf "%.1f" p.rows_per_query;
               Printf.sprintf "%.3f" p.wall_s;
               Printf.sprintf "%d/%d" p.aux_hits p.aux_misses;
             ])
           [ on; off ])
       pairs);
  Printf.printf
    "  per-step growth over a %dx base: %.2fx with auxiliaries, %.2fx \
     without\n"
    (List.fold_left max 1 fact_sizes / List.fold_left min max_int fact_sizes)
    on_growth off_growth;
  let path = "BENCH_higher_order.json" in
  let oc = open_out path in
  output_string oc
    ("{\n  \"benchmark\": \"higher_order\",\n  " ^ Exp_common.meta_json ()
   ^ ",\n");
  output_string oc
    (Printf.sprintf
       "  \"dim_rows\": %d, \"hot_tag\": %d, \"churn_txns\": %d, \
        \"on_growth\": %.2f, \"off_growth\": %.2f,\n"
       dim_rows hot_tag (churn_rounds * txns_per_round) on_growth off_growth);
  output_string oc "  \"points\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.concat_map
          (fun (on, off) ->
            let identical = Relation.equal on.contents off.contents in
            [ json_of_point on identical; json_of_point off identical ])
          pairs));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" path
