(* Rollscope overhead benchmark: the same star maintenance drain run with
   observability disabled (the default handle) and enabled (live trace +
   metrics), comparing drain wall time. The instrumentation budget is <5%
   overhead on the traced drain; writes BENCH_obs.json so the figure is
   tracked across revisions. *)

module Clock = Roll_obs.Clock
module Obs = Roll_obs.Obs
module C = Roll_core
module W = Roll_workload

(* All bench wall-time reads go through the injectable clock, not raw
   Unix.gettimeofday (see DESIGN.md section 14). *)
let clock = Clock.real ()

(* One full drain over a freshly built and churned star workload. Setup is
   outside the timed region; only the [maintain] drain is measured. *)
let drain ~obs () =
  let star = W.Star.create { W.Star.default_config with seed = 42 } in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service =
    match obs with
    | Some obs -> C.Service.create ~obs db (W.Star.capture star)
    | None -> C.Service.create db (W.Star.capture star)
  in
  let _ =
    C.Service.register service
      ~algorithm:(C.Controller.Rolling (C.Rolling.per_relation [| 10; 80; 80 |]))
      (W.Star.view star)
  in
  W.Star.mixed_txns star ~n:400 ~dim_fraction:0.05;
  let t0 = Clock.now clock in
  (match C.Service.maintain service ~budget:10_000 with
  | Ok _ -> ()
  | Error (e : C.Service.step_error) ->
      failwith ("obs bench drain failed at " ^ e.point));
  let wall = Clock.now clock -. t0 in
  (wall, obs)

(* Min of [n] runs: the least-disturbed measurement of identical work. *)
let best n f =
  let rec go k acc =
    if k = 0 then acc
    else
      let wall, _ = f () in
      go (k - 1) (Float.min acc wall)
  in
  go n infinity

let run () =
  (* Warm the allocator and caches off the books. *)
  ignore (drain ~obs:None ());
  let iters = 5 in
  let untraced = best iters (fun () -> drain ~obs:None ()) in
  let traced =
    best iters (fun () -> drain ~obs:(Some (Obs.create ())) ())
  in
  (* One more traced run to report trace volume. *)
  let _, obs = drain ~obs:(Some (Obs.create ())) () in
  let spans =
    match obs with
    | Some obs -> Roll_obs.Trace.recorded (Obs.trace obs)
    | None -> 0
  in
  let overhead_pct =
    if untraced > 0. then (traced -. untraced) /. untraced *. 100. else 0.
  in
  let path = "BENCH_obs.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"obs\",\n\
    \  %s,\n\
    \  \"workload\": \"star\",\n\
    \  \"untraced_drain_s\": %.6f,\n\
    \  \"traced_drain_s\": %.6f,\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"target_overhead_pct\": 5.0,\n\
    \  \"spans_recorded\": %d\n\
     }\n"
    (Exp_common.meta_json ()) untraced traced overhead_pct spans;
  close_out oc;
  Printf.printf
    "  star drain: untraced %.3fms, traced %.3fms, overhead %.2f%% \
     (target <5%%), %d spans\n\
    \  wrote %s\n"
    (untraced *. 1000.) (traced *. 1000.) overhead_pct spans path
