(* Machine-readable scheduler-policy benchmark: runs the Schedsim policy
   evaluation (Slack vs Round_robin on the skewed star workload) and writes
   BENCH_scheduler.json with per-policy staleness and DES contention
   figures, so scheduling regressions can be tracked across revisions. *)

module S = Roll_sim.Schedsim

let json_of_view (v : S.view_metrics) =
  Printf.sprintf
    "        {\"view\": \"%s\", \"sla\": %d, \"max_staleness\": %d, \
     \"mean_staleness\": %.2f, \"violations\": %d}"
    v.S.view v.S.sla v.S.max_staleness v.S.mean_staleness v.S.violations

let json_of_result (r : S.policy_result) =
  Printf.sprintf
    "    {\"policy\": \"%s\", \"total_steps\": %d, \"max_staleness\": %d, \
     \"mean_staleness\": %.2f, \"deferred\": %d, \"backpressured\": %d, \
     \"des_makespan\": %.2f, \"des_update_wait_p95\": %.4f,\n\
     \     \"views\": [\n%s\n     ]}"
    r.S.policy r.S.total_steps r.S.max_staleness r.S.mean_staleness
    r.S.deferred r.S.backpressured r.S.makespan r.S.update_wait_p95
    (String.concat ",\n" (List.map json_of_view r.S.views))

let run () =
  let results = S.run () in
  let path = "BENCH_scheduler.json" in
  let oc = open_out path in
  output_string oc "{\n  \"benchmark\": \"scheduler\",\n  \"policies\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_result results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  List.iter (fun r -> Format.printf "  @[%a@]@." S.pp_result r) results;
  Printf.printf "  wrote %s\n" path
