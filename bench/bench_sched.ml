(* Machine-readable scheduler-policy benchmark: runs the Schedsim policy
   evaluation (Slack vs Round_robin on the skewed star workload) and writes
   BENCH_scheduler.json with per-policy staleness and DES contention
   figures, so scheduling regressions can be tracked across revisions.

   A second axis measures multicore drain throughput: the same star
   workload drained through worker-domain pools of 1, 2 and 4 domains,
   with every parallel run's final view contents checked bit-identical to
   a serial reference drain. Each point reports both the measured wall
   clock (meaningful only when the host actually has spare cores — the
   JSON records [cores] so readers can tell) and a DES-modeled drain time
   driven by the run's measured query footprints, the same contention
   methodology as the policy axis. *)

module S = Roll_sim.Schedsim
module C = Roll_core
module W = Roll_workload
module Des = Roll_sim.Des
module Contention = Roll_sim.Contention
module Predicate = Roll_relation.Predicate
module Relation = Roll_relation.Relation

let json_of_view (v : S.view_metrics) =
  Printf.sprintf
    "        {\"view\": \"%s\", \"sla\": %d, \"max_staleness\": %d, \
     \"mean_staleness\": %.2f, \"violations\": %d}"
    v.S.view v.S.sla v.S.max_staleness v.S.mean_staleness v.S.violations

let json_of_result (r : S.policy_result) =
  Printf.sprintf
    "    {\"policy\": \"%s\", \"total_steps\": %d, \"max_staleness\": %d, \
     \"mean_staleness\": %.2f, \"deferred\": %d, \"backpressured\": %d, \
     \"des_makespan\": %.2f, \"des_update_wait_p95\": %.4f,\n\
     \     \"views\": [\n%s\n     ]}"
    r.S.policy r.S.total_steps r.S.max_staleness r.S.mean_staleness
    r.S.deferred r.S.backpressured r.S.makespan r.S.update_wait_p95
    (String.concat ",\n" (List.map json_of_view r.S.views))

(* ------------------------------------------------------------------ *)
(* Multicore drain throughput: domains=1/2/4 on the star workload.      *)

type domains_point = {
  domains : int;
  steps : int;
  wall_s : float;
  throughput : float;  (* steps per wall second, measured *)
  des_makespan : float;  (* DES-modeled drain time on [domains] lanes *)
  des_throughput : float;  (* steps per DES-modeled second *)
  identical : bool;  (* contents bit-identical to the serial reference *)
}

(* One view per dimension, fact ⋈ dim_i. Registrations are staggered by
   [gap] commits so the views' fact frontiers sit further apart than a
   window is wide — successive waves then carry pairwise-disjoint fact
   windows (same-position windows would serialize by design) and each
   view's dimension windows live on distinct tables. *)
let star_config =
  {
    W.Star.default_config with
    n_dimensions = 4;
    dim_size = 1500;
    fact_initial = 1500;
    seed = 31;
  }

let fact_interval = 8

let stagger_gap = 12

let drain_txns = 480

let star_sub_view star ~name ~dim =
  let db = W.Star.db star in
  let sources =
    [ (W.Star.fact_table star, "f"); (W.Star.dim_table star dim, "d") ]
  in
  let bind = C.View.binder db sources in
  let predicate =
    [
      Predicate.join
        (bind "f" (Printf.sprintf "d%d_key" dim))
        (bind "d" "key");
    ]
  in
  C.View.create db ~name ~sources ~predicate
    ~project:[ bind "f" "measure"; bind "d" "attr" ]

(* Build the workload, drain it (serial when [domains] is [None], through
   a pool otherwise), and return steps, wall seconds, the final contents
   of every view at the last data commit, and the measured per-query
   footprints tagged with their view, in serialization order. *)
let run_star_drain ~domains =
  let star = W.Star.create star_config in
  W.Star.load_initial star;
  let db = W.Star.db star in
  let service = C.Service.create ?domains ~default_sla:50 db (W.Star.capture star) in
  let ctls =
    List.init star_config.W.Star.n_dimensions (fun dim ->
        let v = star_sub_view star ~name:(Printf.sprintf "star%d" dim) ~dim in
        let ctl =
          C.Service.register service
            ~algorithm:
              (C.Controller.Rolling
                 (C.Rolling.per_relation [| fact_interval; 64 |]))
            v
        in
        (* Stagger the next view's materialization past this window. *)
        W.Star.mixed_txns star ~n:stagger_gap ~dim_fraction:0.05;
        ctl)
  in
  W.Star.mixed_txns star ~n:drain_txns ~dim_fraction:0.05;
  let data_now = Roll_storage.Database.now db in
  let t0 = Unix.gettimeofday () in
  let steps = C.Service.step_all service ~budget:max_int in
  let wall = Unix.gettimeofday () -. t0 in
  let footprints =
    List.concat
      (List.mapi
         (fun dim ctl ->
           List.map
             (fun fp -> (Printf.sprintf "star%d" dim, fp))
             (C.Stats.footprints (C.Controller.stats ctl)))
         ctls)
    |> List.sort (fun (_, (a : C.Stats.footprint)) (_, b) ->
           compare a.C.Stats.exec b.C.Stats.exec)
  in
  let contents =
    List.map
      (fun ctl ->
        C.Controller.refresh_to ctl data_now;
        C.Controller.contents ctl)
      ctls
  in
  C.Service.shutdown service;
  (steps, wall, contents, footprints)

(* DES model of the drain on [lanes] domain slots. Every measured query
   becomes one transaction holding two exclusive locks: its lane (items
   are dealt round robin in serialization order, modeling the pool's
   slot-strided dispatch) and its own view's delta (the single-writer rule
   for that view's rows — same-view steps serialize exactly as the wave
   planner serializes them). Pairwise-disjoint wave items over distinct
   views share neither lock, so they overlap freely on separate lanes.
   This is the scaling the pool delivers per spare core; the measured wall
   clock above reports what the current host's cores actually allowed. *)
let des_drain_makespan footprints ~lanes =
  let costs = Contention.default_costs in
  let duration (fp : C.Stats.footprint) =
    let rows =
      List.fold_left (fun acc (_, n) -> acc + n) 0 fp.C.Stats.reads
      + fp.C.Stats.emitted
    in
    costs.Contention.base_cost
    +. (costs.Contention.per_row *. float_of_int rows)
  in
  let txns =
    List.mapi
      (fun i (view, fp) ->
        {
          Des.label = "step";
          arrival = 0.0;
          duration = duration fp;
          locks =
            [
              {
                Des.resource = Printf.sprintf "lane%d" (i mod lanes);
                mode = Des.Exclusive;
              };
              { Des.resource = "delta:" ^ view; mode = Des.Exclusive };
            ];
        })
      footprints
  in
  (Des.run txns).Des.makespan

let run_domains_axis () =
  let _, _, reference, _ = run_star_drain ~domains:None in
  List.map
    (fun n ->
      let steps, wall, contents, footprints = run_star_drain ~domains:(Some n) in
      let des_makespan = des_drain_makespan footprints ~lanes:n in
      {
        domains = n;
        steps;
        wall_s = wall;
        throughput = (if wall > 0. then float_of_int steps /. wall else 0.);
        des_makespan;
        des_throughput =
          (if des_makespan > 0. then float_of_int steps /. des_makespan else 0.);
        identical = List.for_all2 Relation.equal reference contents;
      })
    [ 1; 2; 4 ]

let json_of_domains_point ~wall_base ~des_base p =
  Printf.sprintf
    "    {\"domains\": %d, \"steps\": %d, \"wall_s\": %.4f, \"throughput_steps_per_s\":      %.1f, \"speedup_vs_domains1\": %.2f, \"des_makespan\": %.4f, \"des_throughput_steps_per_s\": %.1f, \"des_speedup_vs_domains1\": %.2f, \"identical_to_serial\": %b}"
    p.domains p.steps p.wall_s p.throughput
    (if wall_base > 0. then p.throughput /. wall_base else 0.)
    p.des_makespan p.des_throughput
    (if des_base > 0. then p.des_throughput /. des_base else 0.)
    p.identical

let run () =
  let results = S.run () in
  let points = run_domains_axis () in
  let wall_base = match points with p :: _ -> p.throughput | [] -> 0. in
  let des_base = match points with p :: _ -> p.des_throughput | [] -> 0. in
  let cores = Domain.recommended_domain_count () in
  let path = "BENCH_scheduler.json" in
  let oc = open_out path in
  output_string oc
    ("{\n  \"benchmark\": \"scheduler\",\n  " ^ Exp_common.meta_json () ^ ",\n");
  output_string oc (Printf.sprintf "  \"cores\": %d,\n" cores);
  output_string oc "  \"policies\": [\n";
  output_string oc (String.concat ",\n" (List.map json_of_result results));
  output_string oc "\n  ],\n  \"domains\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.map (json_of_domains_point ~wall_base ~des_base) points));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  List.iter (fun r -> Format.printf "  @[%a@]@." S.pp_result r) results;
  List.iter
    (fun p ->
      Printf.printf
        "  domains=%d: %d steps, wall %.3fs (%.2fx), DES model %.3fs \
         (%.2fx)%s\n"
        p.domains p.steps p.wall_s
        (if wall_base > 0. then p.throughput /. wall_base else 0.)
        p.des_makespan
        (if des_base > 0. then p.des_throughput /. des_base else 0.)
        (if p.identical then "" else "  CONTENTS MISMATCH"))
    points;
  Printf.printf "  %d core%s on this host; DES figures model one lane per \
                 domain\n"
    cores
    (if cores = 1 then "" else "s");
  Printf.printf "  wrote %s\n" path
